#include "hier/partition.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>

namespace dsdn::hier {
namespace {

constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

// Clustering unit: a metro (all nodes sharing a tag) or a single node when
// the topology carries no metro tags.
struct Unit {
  std::vector<topo::NodeId> nodes;
  std::vector<std::uint32_t> neighbors;  // adjacent unit indices, deduped
};

std::vector<Unit> build_units(const topo::Topology& topo,
                              std::vector<std::uint32_t>& unit_of_node) {
  std::unordered_map<std::string, std::uint32_t> metro_index;
  std::vector<Unit> units;
  unit_of_node.assign(topo.num_nodes(), kUnassigned);
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    const std::string& metro = topo.node(n).metro;
    std::uint32_t u;
    if (metro.empty()) {
      u = static_cast<std::uint32_t>(units.size());
      units.emplace_back();
    } else {
      auto [it, inserted] =
          metro_index.emplace(metro, static_cast<std::uint32_t>(units.size()));
      if (inserted) units.emplace_back();
      u = it->second;
    }
    unit_of_node[n] = u;
    units[u].nodes.push_back(n);
  }
  for (const topo::Link& l : topo.links()) {
    std::uint32_t a = unit_of_node[l.src];
    std::uint32_t b = unit_of_node[l.dst];
    if (a == b) continue;
    units[a].neighbors.push_back(b);
    units[b].neighbors.push_back(a);
  }
  for (Unit& u : units) {
    std::sort(u.neighbors.begin(), u.neighbors.end());
    u.neighbors.erase(std::unique(u.neighbors.begin(), u.neighbors.end()),
                      u.neighbors.end());
  }
  return units;
}

// BFS hop distances over the unit graph from a single source.
std::vector<std::uint32_t> unit_bfs(const std::vector<Unit>& units,
                                    std::uint32_t source) {
  std::vector<std::uint32_t> dist(units.size(), kUnassigned);
  std::deque<std::uint32_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    std::uint32_t u = queue.front();
    queue.pop_front();
    for (std::uint32_t v : units[u].neighbors) {
      if (dist[v] == kUnassigned) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

RegionPartition partition_regions(const topo::Topology& topo,
                                  const PartitionOptions& options) {
  RegionPartition out;
  out.region_of.assign(topo.num_nodes(), 0);
  if (topo.num_nodes() == 0) return out;

  std::vector<std::uint32_t> unit_of_node;
  std::vector<Unit> units = build_units(topo, unit_of_node);

  std::size_t n_regions = options.n_regions;
  if (n_regions == 0) {
    n_regions = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(topo.num_nodes()))));
    n_regions = std::max<std::size_t>(n_regions, 2);
  }
  n_regions = std::min(n_regions, units.size());
  n_regions = std::max<std::size_t>(n_regions, 1);

  // Farthest-first seed selection on the unit graph: the first seed is the
  // largest unit (ties to lowest index), each subsequent seed maximizes its
  // BFS distance to all chosen seeds. Deterministic for a fixed topology.
  std::vector<std::uint32_t> seeds;
  {
    std::uint32_t first = 0;
    for (std::uint32_t u = 1; u < units.size(); ++u) {
      if (units[u].nodes.size() > units[first].nodes.size()) first = u;
    }
    seeds.push_back(first);
    std::vector<std::uint32_t> min_dist = unit_bfs(units, first);
    while (seeds.size() < n_regions) {
      std::uint32_t best = kUnassigned;
      std::uint32_t best_dist = 0;
      for (std::uint32_t u = 0; u < units.size(); ++u) {
        if (std::find(seeds.begin(), seeds.end(), u) != seeds.end()) continue;
        // Unreachable units sort last so each connected component still gets
        // a seed before we start subdividing components.
        std::uint32_t d = min_dist[u];
        if (best == kUnassigned || d > best_dist ||
            (d == best_dist && units[u].nodes.size() >
                                   units[best].nodes.size())) {
          best = u;
          best_dist = d;
        }
      }
      if (best == kUnassigned) break;
      seeds.push_back(best);
      std::vector<std::uint32_t> d = unit_bfs(units, best);
      for (std::uint32_t u = 0; u < units.size(); ++u) {
        min_dist[u] = std::min(min_dist[u], d[u]);
      }
    }
  }
  n_regions = seeds.size();

  // Balanced multi-source BFS growth: regions absorb adjacent unassigned
  // units round-robin, skipping regions already past the size cap. If a
  // full sweep assigns nothing while work remains (cap hit everywhere or a
  // disconnected unit), the cap relaxes.
  std::vector<std::uint32_t> region_of_unit(units.size(), kUnassigned);
  std::vector<std::deque<std::uint32_t>> frontier(n_regions);
  std::vector<std::size_t> region_size(n_regions, 0);
  std::size_t assigned_units = 0;
  for (std::uint32_t r = 0; r < n_regions; ++r) {
    region_of_unit[seeds[r]] = r;
    region_size[r] = units[seeds[r]].nodes.size();
    frontier[r].push_back(seeds[r]);
    ++assigned_units;
  }
  double target = static_cast<double>(topo.num_nodes()) /
                  static_cast<double>(n_regions);
  double cap = target * (1.0 + options.balance_slack);
  while (assigned_units < units.size()) {
    bool progressed = false;
    for (std::uint32_t r = 0; r < n_regions; ++r) {
      if (static_cast<double>(region_size[r]) > cap) continue;
      bool grew = false;
      while (!frontier[r].empty() && !grew) {
        std::uint32_t u = frontier[r].front();
        for (std::uint32_t v : units[u].neighbors) {
          if (region_of_unit[v] != kUnassigned) continue;
          region_of_unit[v] = r;
          region_size[r] += units[v].nodes.size();
          frontier[r].push_back(v);
          ++assigned_units;
          progressed = true;
          grew = true;
          break;
        }
        if (!grew) frontier[r].pop_front();
      }
    }
    if (!progressed) {
      // Either every growable region is capped, or the remaining units are
      // unreachable from any frontier. Relax the cap first; if frontiers are
      // truly exhausted, attach stragglers to the smallest region.
      bool frontier_alive = false;
      for (const auto& f : frontier) {
        if (!f.empty()) frontier_alive = true;
      }
      if (frontier_alive) {
        cap *= 1.25;
      } else {
        std::uint32_t smallest = 0;
        for (std::uint32_t r = 1; r < n_regions; ++r) {
          if (region_size[r] < region_size[smallest]) smallest = r;
        }
        for (std::uint32_t u = 0; u < units.size(); ++u) {
          if (region_of_unit[u] != kUnassigned) continue;
          region_of_unit[u] = smallest;
          region_size[smallest] += units[u].nodes.size();
          ++assigned_units;
        }
      }
    }
  }

  out.n_regions = n_regions;
  out.members.assign(n_regions, {});
  out.borders.assign(n_regions, {});
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    std::uint32_t r = region_of_unit[unit_of_node[n]];
    out.region_of[n] = r;
    out.members[r].push_back(n);
  }
  std::vector<char> is_border(topo.num_nodes(), 0);
  for (const topo::Link& l : topo.links()) {
    if (out.region_of[l.src] != out.region_of[l.dst]) {
      is_border[l.src] = 1;
      is_border[l.dst] = 1;
    }
  }
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (is_border[n]) out.borders[out.region_of[n]].push_back(n);
  }
  return out;
}

}  // namespace dsdn::hier
