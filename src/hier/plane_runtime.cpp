#include "hier/plane_runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "te/parallel_solver.hpp"
#include "util/rng.hpp"

namespace dsdn::hier {
namespace {

std::uint64_t flow_key(topo::NodeId src, topo::NodeId dst,
                       metrics::PriorityClass priority) {
  return (static_cast<std::uint64_t>(src) << 34) ^
         (static_cast<std::uint64_t>(dst) << 4) ^
         static_cast<std::uint64_t>(priority);
}

}  // namespace

std::size_t place_flow(topo::NodeId src, topo::NodeId dst,
                       metrics::PriorityClass priority,
                       const std::vector<char>& alive) {
  const std::uint64_t key = flow_key(src, dst, priority);
  std::size_t best = alive.size();
  std::uint64_t best_score = 0;
  for (std::size_t p = 0; p < alive.size(); ++p) {
    if (!alive[p]) continue;
    std::uint64_t score = util::splitmix64(key ^ util::splitmix64(p + 1));
    if (best == alive.size() || score > best_score) {
      best = p;
      best_score = score;
    }
  }
  if (best == alive.size()) {
    throw std::logic_error("place_flow: no live plane");
  }
  return best;
}

PlaneRuntime::PlaneRuntime(const topo::Topology& base,
                           const traffic::TrafficMatrix& tm,
                           PlaneRuntimeConfig config)
    : config_(std::move(config)) {
  if (config_.planes == 0) {
    throw std::invalid_argument("PlaneRuntime: 0 planes");
  }
  auto plane_topos = shard::make_planes(base, config_.planes);
  alive_.assign(config_.planes, 1);
  demands_.resize(config_.planes);
  for (const traffic::Demand& d : tm.demands()) {
    demands_[place_flow(d.src, d.dst, d.priority, alive_)].push_back(d);
  }
  planes_.reserve(config_.planes);
  for (std::size_t p = 0; p < config_.planes; ++p) {
    planes_.push_back(std::make_unique<sim::DsdnEmulation>(
        std::move(plane_topos[p]), traffic::TrafficMatrix(demands_[p]),
        config_.emulation));
    if (config_.fib_cores > 0) {
      planes_.back()->enable_fib_snapshots(config_.fib_cores);
    }
  }
}

void PlaneRuntime::bootstrap() {
  auto boot = [&](std::size_t p) { planes_[p]->bootstrap(); };
  if (config_.pool) {
    config_.pool->parallel_for(planes_.size(), boot);
  } else {
    for (std::size_t p = 0; p < planes_.size(); ++p) boot(p);
  }
}

std::size_t PlaneRuntime::num_alive() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), char{1}));
}

std::size_t PlaneRuntime::plane_of(topo::NodeId src, topo::NodeId dst,
                                   metrics::PriorityClass priority) const {
  return place_flow(src, dst, priority, alive_);
}

void PlaneRuntime::fail_fiber_in_plane(std::size_t p, topo::LinkId fiber) {
  planes_.at(p)->fail_fiber(fiber);
}

void PlaneRuntime::repair_fiber_in_plane(std::size_t p, topo::LinkId fiber) {
  planes_.at(p)->repair_fiber(fiber);
}

void PlaneRuntime::fail_conduit(topo::LinkId fiber) {
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    if (alive_[p]) planes_[p]->fail_fiber(fiber);
  }
}

void PlaneRuntime::repair_conduit(topo::LinkId fiber) {
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    if (alive_[p]) planes_[p]->repair_fiber(fiber);
  }
}

void PlaneRuntime::reprogram(const std::vector<std::size_t>& touched) {
  auto push = [&](std::size_t i) {
    std::size_t p = touched[i];
    planes_[p]->update_demands(traffic::TrafficMatrix(demands_[p]));
  };
  if (config_.pool) {
    config_.pool->parallel_for(touched.size(), push);
  } else {
    for (std::size_t i = 0; i < touched.size(); ++i) push(i);
  }
}

void PlaneRuntime::score_survivors(RebalanceReport& report) const {
  if (config_.fib_cores == 0 || config_.score_packets == 0) return;
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    if (!alive_[p] || demands_[p].empty()) continue;
    sim::PacketScoreOptions options;
    options.packets = config_.score_packets;
    options.seed = 0x9A7E5ULL ^ p;
    auto score = sim::score_packets(*planes_[p], options);
    report.scored_packets += score.packets;
    report.score_hard_drops += score.hard_drops;
  }
}

RebalanceReport PlaneRuntime::fail_plane(std::size_t p) {
  if (!alive_.at(p)) {
    throw std::invalid_argument("fail_plane: plane already dead");
  }
  if (num_alive() <= 1) {
    throw std::invalid_argument("fail_plane: last live plane");
  }
  RebalanceReport report;
  std::size_t total = total_flows();

  // Drain: the dead plane's rows leave its matrix; re-place: each re-runs
  // HRW over the survivors.
  alive_[p] = 0;
  std::vector<traffic::Demand> moved = std::move(demands_[p]);
  demands_[p].clear();
  std::vector<char> touched(planes_.size(), 0);
  for (const traffic::Demand& d : moved) {
    std::size_t t = place_flow(d.src, d.dst, d.priority, alive_);
    demands_[t].push_back(d);
    touched[t] = 1;
    ++report.moved_flows;
    report.moved_gbps += d.rate_gbps;
  }
  report.exposed_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(report.moved_flows) /
                       static_cast<double>(total);

  // Reprogram every plane that gained flows, in parallel.
  std::vector<std::size_t> gained;
  for (std::size_t t = 0; t < planes_.size(); ++t) {
    if (touched[t]) gained.push_back(t);
  }
  reprogram(gained);
  report.reprogrammed_planes = gained.size();

  score_survivors(report);
  static obs::Counter& c_fail =
      obs::Registry::global().counter("hier.plane.failures");
  static obs::Counter& c_moved =
      obs::Registry::global().counter("hier.plane.flows_moved");
  c_fail.add(1);
  c_moved.add(report.moved_flows);
  return report;
}

RebalanceReport PlaneRuntime::restore_plane(std::size_t p) {
  if (alive_.at(p)) {
    throw std::invalid_argument("restore_plane: plane already alive");
  }
  RebalanceReport report;
  std::size_t total = total_flows();

  alive_[p] = 1;
  // Exactly the flows whose full-set HRW argmax is p come home; nothing
  // else moves (the rendezvous property).
  std::vector<char> touched(planes_.size(), 0);
  for (std::size_t t = 0; t < planes_.size(); ++t) {
    if (t == p) continue;
    std::vector<traffic::Demand> keep;
    keep.reserve(demands_[t].size());
    for (const traffic::Demand& d : demands_[t]) {
      if (place_flow(d.src, d.dst, d.priority, alive_) == p) {
        demands_[p].push_back(d);
        touched[t] = 1;
        touched[p] = 1;
        ++report.moved_flows;
        report.moved_gbps += d.rate_gbps;
      } else {
        keep.push_back(d);
      }
    }
    demands_[t] = std::move(keep);
  }
  report.exposed_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(report.moved_flows) /
                       static_cast<double>(total);

  std::vector<std::size_t> changed;
  for (std::size_t t = 0; t < planes_.size(); ++t) {
    if (touched[t]) changed.push_back(t);
  }
  reprogram(changed);
  report.reprogrammed_planes = changed.size();

  score_survivors(report);
  static obs::Counter& c_restore =
      obs::Registry::global().counter("hier.plane.restores");
  c_restore.add(1);
  return report;
}

dataplane::ForwardResult PlaneRuntime::send_packet(
    topo::NodeId ingress, topo::NodeId dst, metrics::PriorityClass priority,
    std::uint64_t entropy) const {
  std::size_t p = place_flow(ingress, dst, priority, alive_);
  const sim::DsdnEmulation& plane = *planes_[p];
  if (dataplane::SnapshotHub* hub = plane.fib_hub()) {
    // Plane-aware snapshot path: forward on the selected plane's
    // published RCU epoch, the same tables its BatchPipelines read.
    dataplane::SnapshotView view(hub->acquire(0));
    dataplane::Packet pkt;
    pkt.dst_ip = plane.address_of(dst);
    pkt.priority = priority;
    pkt.entropy = entropy;
    pkt.ttl = static_cast<int>(4 * plane.network().num_nodes() + 16);
    dataplane::Forwarder forwarder(plane.network(), &view);
    return forwarder.forward(std::move(pkt), ingress);
  }
  return plane.send_packet(ingress, plane.address_of(dst), priority, entropy);
}

bool PlaneRuntime::all_planes_converged() const {
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    if (alive_[p] && !planes_[p]->views_converged()) return false;
  }
  return true;
}

std::size_t PlaneRuntime::total_flows() const {
  std::size_t n = 0;
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    if (alive_[p]) n += demands_[p].size();
  }
  return n;
}

double PlaneRuntime::total_rate_gbps() const {
  double rate = 0.0;
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    if (!alive_[p]) continue;
    for (const traffic::Demand& d : demands_[p]) rate += d.rate_gbps;
  }
  return rate;
}

}  // namespace dsdn::hier
