#pragma once

// Two-level hierarchical TE solve over the logical-node abstraction.
//
// Top level: te::BatchSolver on the logical graph (O(regions) nodes),
// inter-region demands aggregated by (src region, dst region, class).
// Bottom level: one independent solve per region, run in parallel on the
// shared te::ThreadPool, placing the segments the top-level paths induce
// (source -> exit border, entry border -> exit border for transit, entry
// border -> destination). Segments are solved on the *full* topology with
// residual capacity zeroed outside the region, which confines paths to
// the region without remapping node ids.
//
// Stitching zips each region's weighted segment splits into end-to-end
// weighted paths (cumulative-weight interval alignment, so per-link loads
// match each region's intended split without a path-product blowup), and
// a final settle pass scales any allocation that oversubscribes a link --
// the hierarchical solution is always feasible; optimality is what it
// trades (bounded by check_optimality_gap against the flat solve).

#include <cstdint>
#include <vector>

#include "hier/logical.hpp"
#include "hier/partition.hpp"
#include "te/solver.hpp"

namespace dsdn::te {
class ThreadPool;
}

namespace dsdn::hier {

struct Hierarchy {
  RegionPartition partition;
  LogicalTopology logical;
};

// Partition + logical view for `topo`. Rebuild after topology churn (the
// partition is stable under link flips; the logical view is not).
Hierarchy build_hierarchy(const topo::Topology& topo,
                          const PartitionOptions& options = {});

struct HierOptions {
  HierOptions() {
    // Region solves run with a coarser waterfill quantum and a looser
    // satisfied tolerance than the flat default: intra-region fairness
    // granularity barely moves the end-to-end split (the min-fraction
    // stitch and settle pass dominate), and the saved rounds are a large
    // share of the hierarchical win. The optimality-gap harness bounds
    // what this costs in delivered throughput.
    region.quantum_divisor = 4.0;
    region.satisfied_tolerance = 1e-2;
  }

  PartitionOptions partition;
  // Solver for the logical graph (kBatch default).
  te::SolverOptions top;
  // Solver for the per-region segment solves.
  te::SolverOptions region;
  // Pool parallelizing the per-region solves (regions are the parallel
  // dimension; nested solver parallel_for calls run inline). May be null.
  te::ThreadPool* pool = nullptr;
  // Run the feasibility settle pass (on by default; off only for
  // debugging the raw stitched solution).
  bool settle = true;
};

struct HierSolveStats {
  double wall_time_s = 0.0;
  double top_solve_s = 0.0;
  double region_solve_s = 0.0;  // wall time of the parallel region phase
  double stitch_s = 0.0;
  std::size_t n_regions = 0;
  std::size_t logical_demands = 0;   // aggregated inter-region rows
  std::size_t segment_demands = 0;   // total per-region rows
  std::size_t settle_scaled = 0;     // allocations shrunk by the settle pass
};

// Solves `tm` over `topo` through the hierarchy. Returns a Solution with
// one Allocation per input demand, in input order (the flat solver's
// contract), feasible w.r.t. link capacities.
te::Solution solve_hierarchical(const topo::Topology& topo,
                                const traffic::TrafficMatrix& tm,
                                const Hierarchy& hierarchy,
                                const HierOptions& options = {},
                                HierSolveStats* stats = nullptr);

// DiffChecker-style parity harness for the hierarchical solve: validates
// the solution's shape and feasibility against the concrete topology and
// bounds the throughput gap versus a flat solve of the same inputs.
struct GapReport {
  std::vector<std::string> violations;
  double hier_total_gbps = 0.0;
  double flat_total_gbps = 0.0;
  // (flat - hier) / flat; <= 0 when the hierarchy matched or beat flat.
  double gap_fraction = 0.0;

  bool ok() const { return violations.empty(); }
};

struct GapOptions {
  // Per-link capacity overshoot tolerated before flagging (absolute Gbps).
  double capacity_slack_gbps = 1e-6;
  // Gap above this fraction is a violation (<= 0 disables the check).
  double max_gap_fraction = 0.0;
};

GapReport check_optimality_gap(const topo::Topology& topo,
                               const traffic::TrafficMatrix& tm,
                               const te::Solution& hier_solution,
                               const te::Solution& flat_solution,
                               const GapOptions& options = {});

}  // namespace dsdn::hier
