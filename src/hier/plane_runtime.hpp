#pragma once

// First-class sharded dSDN runtime (§6 + ROADMAP item 1): K parallel
// planes, each a full dSDN instance (flooding, StateDbs, TE, FIBs),
// running concurrently on the shared te::ThreadPool, with cross-plane
// demand placement and rebalancing when a plane dies.
//
// Placement is rendezvous (HRW) hashing over the *live* plane set: each
// flow key scores every plane and picks the argmax. With all planes
// alive this is a uniform stable assignment; when plane p fails, exactly
// the flows whose argmax was p re-place onto survivors (no unrelated flow
// moves), and when p returns the same flows -- and only they -- move
// back. That is what bounds blast radius at 1/K of flows.
//
// Rebalance protocol (drain -> re-place -> reprogram):
//   1. drain: the dead plane's demand rows are removed from its matrix;
//   2. re-place: each drained flow re-runs HRW over the survivors;
//   3. reprogram: every plane that gained flows gets update_demands()
//      (re-advertise changed origins, flood, recompute) -- run in
//      parallel across planes on the shared pool;
//   4. score: packet-level transient-loss check via sim::score_packets
//      on every surviving plane's RCU FIB snapshots.

#include <cstdint>
#include <memory>
#include <vector>

#include "shard/sharded_wan.hpp"
#include "sim/emulation.hpp"
#include "sim/packet_score.hpp"

namespace dsdn::te {
class ThreadPool;
}

namespace dsdn::hier {

// Rendezvous hash: the live plane with the highest per-flow score.
// `alive[p] != 0` marks live planes; at least one must be alive.
std::size_t place_flow(topo::NodeId src, topo::NodeId dst,
                       metrics::PriorityClass priority,
                       const std::vector<char>& alive);

struct PlaneRuntimeConfig {
  std::size_t planes = 4;
  sim::EmulationConfig emulation;
  // RCU snapshot cores per plane (0 disables snapshots and packet
  // scoring).
  std::size_t fib_cores = 1;
  // Packets scored per surviving plane after a rebalance (0 disables).
  std::size_t score_packets = 512;
  // Parallelizes bootstrap and per-plane reprogramming. May be null
  // (serial).
  te::ThreadPool* pool = nullptr;
};

struct RebalanceReport {
  std::size_t moved_flows = 0;
  double moved_gbps = 0.0;
  // moved_flows / total flows -- the blast radius; < 1/K in expectation.
  double exposed_fraction = 0.0;
  std::size_t reprogrammed_planes = 0;
  // Packet scoring over the surviving planes (when enabled).
  std::size_t scored_packets = 0;
  std::size_t score_hard_drops = 0;
};

class PlaneRuntime {
 public:
  PlaneRuntime(const topo::Topology& base, const traffic::TrafficMatrix& tm,
               PlaneRuntimeConfig config = {});

  // Boots every plane, in parallel when a pool is configured.
  void bootstrap();

  std::size_t num_planes() const { return planes_.size(); }
  std::size_t num_alive() const;
  bool plane_alive(std::size_t p) const { return alive_.at(p) != 0; }

  sim::DsdnEmulation& plane(std::size_t p) { return *planes_.at(p); }
  const sim::DsdnEmulation& plane(std::size_t p) const {
    return *planes_.at(p);
  }
  // Demand rows currently placed on plane p (drained while p is dead).
  const std::vector<traffic::Demand>& plane_demands(std::size_t p) const {
    return demands_.at(p);
  }

  // Live-set HRW placement for a flow key (packets and demands agree).
  std::size_t plane_of(topo::NodeId src, topo::NodeId dst,
                       metrics::PriorityClass priority) const;

  // Plane-local fiber events (the other planes' parallel fibers are
  // untouched -- the containment property).
  void fail_fiber_in_plane(std::size_t p, topo::LinkId fiber);
  void repair_fiber_in_plane(std::size_t p, topo::LinkId fiber);

  // Cross-plane SRLG: planes stripe the same physical conduits, so a
  // conduit cut takes the parallel fiber down in *every* live plane
  // (plane topologies share link ids by construction).
  void fail_conduit(topo::LinkId fiber);
  void repair_conduit(topo::LinkId fiber);

  // Kills plane p and rebalances its flows onto the survivors
  // (drain -> re-place -> reprogram -> score). Throws if p is the last
  // live plane.
  RebalanceReport fail_plane(std::size_t p);
  // Brings p back: exactly the flows whose all-planes HRW argmax is p
  // move home, and every touched plane reprograms.
  RebalanceReport restore_plane(std::size_t p);

  // Forwards one packet on the plane its flow hashes to, reading that
  // plane's published RCU FIB snapshot when snapshots are enabled (the
  // plane-aware SnapshotHub path), else the plane's live FIBs.
  dataplane::ForwardResult send_packet(
      topo::NodeId ingress, topo::NodeId dst,
      metrics::PriorityClass priority = metrics::PriorityClass::kHigh,
      std::uint64_t entropy = 1) const;

  // True iff every *live* plane's views are internally converged.
  bool all_planes_converged() const;

  // Total demand rows / rate across live planes (conservation checks).
  std::size_t total_flows() const;
  double total_rate_gbps() const;

  const PlaneRuntimeConfig& config() const { return config_; }

 private:
  // Pushes demands_[p] into plane p's emulation for every p in `touched`,
  // parallel across planes on the pool.
  void reprogram(const std::vector<std::size_t>& touched);
  void score_survivors(RebalanceReport& report) const;

  PlaneRuntimeConfig config_;
  std::vector<std::unique_ptr<sim::DsdnEmulation>> planes_;
  std::vector<std::vector<traffic::Demand>> demands_;
  std::vector<char> alive_;
};

}  // namespace dsdn::hier
