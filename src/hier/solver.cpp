#include "hier/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "te/parallel_solver.hpp"

namespace dsdn::hier {
namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr double kEps = 1e-9;

// One aggregated (from, to, class) row inside a region's segment solve.
// Keyed (from << 32 | to) per class: row indices are assigned in demand
// iteration order, so hash-map iteration order never matters.
struct RegionWork {
  std::unordered_map<std::uint64_t, std::size_t>
      rows[metrics::kNumPriorityClasses];
  std::vector<traffic::Demand> demands;
};

// Registers `rate` against the region's (from, to, class) row, creating it
// on first use. Returns the row index; kTrivialRow when from == to (no
// interior traversal needed).
constexpr std::size_t kTrivialRow = std::numeric_limits<std::size_t>::max();

std::size_t add_segment(RegionWork& w, topo::NodeId from, topo::NodeId to,
                        metrics::PriorityClass cls, double rate) {
  if (from == to) return kTrivialRow;
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  auto [it, inserted] =
      w.rows[static_cast<int>(cls)].emplace(key, w.demands.size());
  if (inserted) {
    w.demands.push_back({from, to, cls, 0.0});
  }
  w.demands[it->second].rate_gbps += rate;
  return it->second;
}

// Normalizes an allocation's weighted paths in place (weights sum to 1).
void normalize_paths(te::Allocation& a) {
  double sum = 0.0;
  for (const te::WeightedPath& wp : a.paths) sum += wp.weight;
  if (sum > kEps) {
    for (te::WeightedPath& wp : a.paths) wp.weight /= sum;
  }
}

// Zips per-segment weighted splits into end-to-end weighted paths by
// aligning cumulative-weight intervals: for every interval of [0, 1) where
// each segment's active path is constant, emit the concatenation
// seg0 + member0 + seg1 + member1 + ... with weight = interval width. The
// per-link load of the result matches each segment's intended split
// exactly, and the path count is bounded by the *sum* of the segments'
// path counts, not their product.
//
// `segments[i] == nullptr` marks a trivial (from == to) segment. Appends
// into `out` (cleared first); the caller reuses the buffer across calls.
void zip_segments(
    const std::vector<const std::vector<te::WeightedPath>*>& segments,
    const std::vector<topo::LinkId>& member_links,
    std::vector<te::WeightedPath>& out) {
  std::vector<std::size_t> idx(segments.size(), 0);
  std::vector<double> cum(segments.size(),
                          std::numeric_limits<double>::infinity());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    if (segments[s] && !segments[s]->empty()) {
      cum[s] = (*segments[s])[0].weight;
    }
  }
  out.clear();
  double pos = 0.0;
  while (pos < 1.0 - 1e-7) {
    double end = 1.0;
    for (std::size_t s = 0; s < segments.size(); ++s) {
      end = std::min(end, cum[s]);
    }
    double width = end - pos;
    if (width > 1e-7) {
      te::WeightedPath wp;
      wp.weight = width;
      for (std::size_t s = 0; s < segments.size(); ++s) {
        if (segments[s] && idx[s] < segments[s]->size()) {
          const te::Path& p = (*segments[s])[idx[s]].path;
          wp.path.links.insert(wp.path.links.end(), p.links.begin(),
                               p.links.end());
        }
        if (s + 1 < segments.size()) {
          wp.path.links.push_back(member_links[s]);
        }
      }
      out.push_back(std::move(wp));
    }
    for (std::size_t s = 0; s < segments.size(); ++s) {
      if (!segments[s]) continue;
      if (cum[s] <= end + 1e-9 && idx[s] + 1 <= segments[s]->size()) {
        ++idx[s];
        cum[s] = idx[s] < segments[s]->size()
                     ? cum[s] + (*segments[s])[idx[s]].weight
                     : std::numeric_limits<double>::infinity();
      }
    }
    if (end <= pos + 1e-12) break;  // no forward progress (defensive)
    pos = end;
  }
}

}  // namespace

Hierarchy build_hierarchy(const topo::Topology& topo,
                          const PartitionOptions& options) {
  Hierarchy h;
  h.partition = partition_regions(topo, options);
  h.logical = build_logical(topo, h.partition);
  return h;
}

te::Solution solve_hierarchical(const topo::Topology& topo,
                                const traffic::TrafficMatrix& tm,
                                const Hierarchy& hierarchy,
                                const HierOptions& options,
                                HierSolveStats* stats) {
  auto t_start = Clock::now();
  const RegionPartition& part = hierarchy.partition;
  const LogicalTopology& logical = hierarchy.logical;
  std::size_t n_regions = part.n_regions;

  HierSolveStats local_stats;
  HierSolveStats& st = stats ? *stats : local_stats;
  st = {};
  st.n_regions = n_regions;

  te::Solution out;
  out.allocations.resize(tm.size());
  for (std::size_t i = 0; i < tm.size(); ++i) {
    out.allocations[i].demand = tm.demands()[i];
  }
  if (tm.empty() || n_regions == 0) return out;

  // Border -> index within its region's LogicalNode, for transit lookups.
  std::vector<std::unordered_map<topo::NodeId, std::size_t>> border_index(
      n_regions);
  for (std::size_t r = 0; r < n_regions; ++r) {
    const LogicalNode& ln = logical.nodes[r];
    for (std::size_t i = 0; i < ln.borders.size(); ++i) {
      border_index[r].emplace(ln.borders[i], i);
    }
  }

  // ---- 1. Split demands: intra-region rows go straight to their region;
  // inter-region rows aggregate by (src region, dst region, class) into
  // the logical traffic matrix.
  struct Group {
    std::uint32_t r_src = 0, r_dst = 0;
    double rate = 0.0;
    std::vector<std::size_t> demand_rows;  // original tm indices
  };
  // Keyed ((r_src << 32 | r_dst) * kNumPriorityClasses + class); group
  // order is demand iteration order, independent of the hash map.
  std::unordered_map<std::uint64_t, std::size_t> group_index;
  std::vector<Group> groups;
  std::vector<traffic::Demand> logical_rows;
  std::vector<RegionWork> region_work(n_regions);
  // Per original demand: the group it joined, or its intra-region row.
  struct DemandRef {
    bool intra = false;
    std::size_t group = 0;       // when !intra
    std::size_t intra_row = 0;   // when intra (kTrivialRow for src == dst)
  };
  std::vector<DemandRef> refs(tm.size());

  for (std::size_t i = 0; i < tm.size(); ++i) {
    const traffic::Demand& d = tm.demands()[i];
    std::uint32_t rs = part.region_of[d.src];
    std::uint32_t rd = part.region_of[d.dst];
    if (rs == rd) {
      refs[i].intra = true;
      refs[i].intra_row =
          add_segment(region_work[rs], d.src, d.dst, d.priority, d.rate_gbps);
    } else {
      const std::uint64_t key =
          ((static_cast<std::uint64_t>(rs) << 32) | rd) *
              metrics::kNumPriorityClasses +
          static_cast<int>(d.priority);
      auto [it, inserted] = group_index.emplace(key, groups.size());
      if (inserted) {
        groups.push_back({rs, rd, 0.0, {}});
        logical_rows.push_back({rs, rd, d.priority, 0.0});
      }
      Group& g = groups[it->second];
      g.rate += d.rate_gbps;
      g.demand_rows.push_back(i);
      logical_rows[it->second].rate_gbps += d.rate_gbps;
      refs[i].group = it->second;
    }
  }
  st.logical_demands = logical_rows.size();

  // ---- 2. Top-level solve over the logical graph.
  auto t_top = Clock::now();
  traffic::TrafficMatrix logical_tm(logical_rows);
  te::SolverOptions top_options = options.top;
  te::Solution top = te::Solver(top_options).solve(logical.graph, logical_tm);
  st.top_solve_s = since(t_top);

  // ---- 3. Expand logical paths: pick one concrete member link per
  // logical hop (greedy on spare capacity, informed by the next region's
  // border-to-border transit matrix so we never enter a region at a border
  // that cannot reach the required exit), and register the induced
  // border-to-border transit segments.
  struct Expansion {
    double group_rate = 0.0;  // group rate carried by this logical path
    std::vector<topo::LinkId> member;        // one per logical hop
    std::vector<std::size_t> transit_rows;   // per transit region
    std::vector<std::uint32_t> transit_regions;
  };
  // expansions[g] parallels top.allocations[g].paths.
  std::vector<std::vector<Expansion>> expansions(groups.size());
  std::vector<double> placed(topo.num_links(), 0.0);

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const te::Allocation& ta = top.allocations[g];
    if (ta.allocated_gbps <= kEps) continue;
    expansions[g].reserve(ta.paths.size());
    for (const te::WeightedPath& lp : ta.paths) {
      Expansion ex;
      ex.group_rate = ta.allocated_gbps * lp.weight;
      if (ex.group_rate <= kEps || lp.path.empty()) continue;
      ex.member.reserve(lp.path.links.size());
      bool expandable = true;
      for (std::size_t h = 0; h < lp.path.links.size(); ++h) {
        topo::LinkId llid = lp.path.links[h];
        const std::vector<topo::LinkId>& candidates = logical.members[llid];
        const std::vector<topo::LinkId>* next =
            h + 1 < lp.path.links.size()
                ? &logical.members[lp.path.links[h + 1]]
                : nullptr;
        topo::LinkId best = topo::kInvalidLink;
        double best_score = -std::numeric_limits<double>::infinity();
        for (topo::LinkId cand : candidates) {
          const topo::Link& cl = topo.link(cand);
          double spare = cl.capacity_gbps - placed[cand];
          double score = spare;
          if (next) {
            // Entering region_of[cl.dst]; can this entry border reach any
            // usable exit border of the next hop?
            std::uint32_t reg = part.region_of[cl.dst];
            const LogicalNode& ln = logical.nodes[reg];
            std::size_t bi = border_index[reg].at(cl.dst);
            double t = 0.0;
            for (topo::LinkId m2 : *next) {
              std::size_t bj = border_index[reg].at(topo.link(m2).src);
              t = std::max(t, ln.transit(bi, bj));
            }
            score = std::min(spare, t);
          }
          if (score > best_score) {
            best_score = score;
            best = cand;
          }
        }
        if (best == topo::kInvalidLink) {
          expandable = false;
          break;
        }
        placed[best] += ex.group_rate;
        ex.member.push_back(best);
      }
      if (!expandable) continue;
      // Transit segments between consecutive member links.
      for (std::size_t h = 0; h + 1 < ex.member.size(); ++h) {
        topo::NodeId entry = topo.link(ex.member[h]).dst;
        topo::NodeId exit = topo.link(ex.member[h + 1]).src;
        std::uint32_t reg = part.region_of[entry];
        ex.transit_regions.push_back(reg);
        ex.transit_rows.push_back(add_segment(region_work[reg], entry, exit,
                                              ta.demand.priority,
                                              ex.group_rate));
      }
      expansions[g].push_back(std::move(ex));
    }
  }

  // First/last segments are per original demand (the group aggregates
  // distinct source/destination routers within a region pair).
  // first_last[i][j] = rows for demand i on its group's j-th expansion.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> first_last(
      tm.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const Group& grp = groups[g];
    if (expansions[g].empty() || grp.rate <= kEps) continue;
    for (std::size_t row : grp.demand_rows) {
      const traffic::Demand& d = tm.demands()[row];
      double share = d.rate_gbps / grp.rate;
      first_last[row].reserve(expansions[g].size());
      for (const Expansion& ex : expansions[g]) {
        double rate = ex.group_rate * share;
        topo::NodeId first_border = topo.link(ex.member.front()).src;
        topo::NodeId last_border = topo.link(ex.member.back()).dst;
        std::size_t fr = add_segment(region_work[grp.r_src], d.src,
                                     first_border, d.priority, rate);
        std::size_t lr = add_segment(region_work[grp.r_dst], last_border,
                                     d.dst, d.priority, rate);
        first_last[row].push_back({fr, lr});
      }
    }
  }
  for (const RegionWork& w : region_work) st.segment_demands += w.demands.size();

  // ---- 4. Per-region solves, parallel across regions. Each region is
  // extracted into a dense subtopology (up intra-region links only) so the
  // solver's per-round costs scale with the region, not the WAN -- the
  // batch solver scans the whole edge array it is handed every round, so
  // a residual-override over the full graph would forfeit the O(regions)
  // decomposition this subsystem exists for. Paths translate back through
  // the local -> global link map.
  auto t_regions = Clock::now();
  std::vector<te::Solution> region_solutions(n_regions);
  std::vector<topo::NodeId> to_local(topo.num_nodes(), topo::kInvalidNode);
  for (std::size_t r = 0; r < n_regions; ++r) {
    const auto& members = part.members[r];
    for (std::size_t i = 0; i < members.size(); ++i)
      to_local[members[i]] = static_cast<topo::NodeId>(i);
  }
  auto solve_region = [&](std::size_t r) {
    if (region_work[r].demands.empty()) return;
    topo::Topology sub;
    for (topo::NodeId n : part.members[r]) sub.add_node(topo.node(n).name);
    std::vector<topo::LinkId> to_global;
    for (const topo::Link& l : topo.links()) {
      if (!l.up || part.region_of[l.src] != r || part.region_of[l.dst] != r)
        continue;
      sub.add_link(to_local[l.src], to_local[l.dst], l.capacity_gbps,
                   l.igp_metric, l.delay_s);
      to_global.push_back(l.id);
    }
    std::vector<traffic::Demand> local = region_work[r].demands;
    for (traffic::Demand& d : local) {
      d.src = to_local[d.src];
      d.dst = to_local[d.dst];
    }
    te::Solution sol =
        te::Solver(options.region).solve(sub, traffic::TrafficMatrix(local));
    for (te::Allocation& a : sol.allocations) {
      for (te::WeightedPath& wp : a.paths) {
        for (topo::LinkId& l : wp.path.links) l = to_global[l];
      }
    }
    region_solutions[r] = std::move(sol);
  };
  if (options.pool) {
    options.pool->parallel_for(n_regions, solve_region);
  } else {
    for (std::size_t r = 0; r < n_regions; ++r) solve_region(r);
  }
  st.region_solve_s = since(t_regions);

  // Per-row delivered fraction and normalized split, reused by every
  // demand that shares the row. Paths are normalized in place inside the
  // region solutions; row_paths just points at them.
  static const std::vector<te::WeightedPath> kNoPaths;
  std::vector<std::vector<double>> row_fraction(n_regions);
  std::vector<std::vector<const std::vector<te::WeightedPath>*>> row_paths(
      n_regions);
  for (std::size_t r = 0; r < n_regions; ++r) {
    std::size_t n = region_work[r].demands.size();
    row_fraction[r].assign(n, 0.0);
    row_paths[r].assign(n, &kNoPaths);
    for (std::size_t s = 0; s < n; ++s) {
      te::Allocation& a = region_solutions[r].allocations[s];
      if (a.allocated_gbps <= kEps || a.demand.rate_gbps <= kEps) continue;
      row_fraction[r][s] =
          std::min(1.0, a.allocated_gbps / a.demand.rate_gbps);
      normalize_paths(a);
      row_paths[r][s] = &a.paths;
    }
  }

  // ---- 5. Stitch segments into end-to-end allocations.
  auto t_stitch = Clock::now();
  std::vector<const std::vector<te::WeightedPath>*> segs;
  std::vector<te::WeightedPath> zipped;
  std::vector<std::pair<std::vector<topo::LinkId>, double>> merged;
  for (std::size_t i = 0; i < tm.size(); ++i) {
    const traffic::Demand& d = tm.demands()[i];
    te::Allocation& alloc = out.allocations[i];
    if (refs[i].intra) {
      std::uint32_t r = part.region_of[d.src];
      std::size_t row = refs[i].intra_row;
      if (row == kTrivialRow) {
        // src == dst: degenerate, nothing to place.
        alloc.allocated_gbps = d.rate_gbps;
        continue;
      }
      alloc.allocated_gbps = d.rate_gbps * row_fraction[r][row];
      if (alloc.allocated_gbps > kEps) alloc.paths = *row_paths[r][row];
      continue;
    }
    const Group& grp = groups[refs[i].group];
    const std::vector<Expansion>& exs = expansions[refs[i].group];
    if (exs.empty() || grp.rate <= kEps) continue;
    double share = d.rate_gbps / grp.rate;
    // Merge duplicate concrete paths across logical-path expansions.
    // Counts are small (sum of segment path counts), so a linear scan
    // beats a tree map; first-appearance order is deterministic.
    merged.clear();
    double total = 0.0;
    for (std::size_t j = 0; j < exs.size(); ++j) {
      const Expansion& ex = exs[j];
      auto [first_row, last_row] = first_last[i][j];
      double frac = 1.0;
      segs.clear();
      auto push_seg = [&](std::uint32_t reg, std::size_t row) {
        if (row == kTrivialRow) {
          segs.push_back(nullptr);
        } else {
          frac = std::min(frac, row_fraction[reg][row]);
          segs.push_back(row_paths[reg][row]);
        }
      };
      push_seg(grp.r_src, first_row);
      for (std::size_t s = 0; s < ex.transit_rows.size(); ++s) {
        push_seg(ex.transit_regions[s], ex.transit_rows[s]);
      }
      push_seg(grp.r_dst, last_row);
      double rate = ex.group_rate * share * frac;
      if (rate <= kEps) continue;
      zip_segments(segs, ex.member, zipped);
      for (te::WeightedPath& wp : zipped) {
        const double add = rate * wp.weight;
        bool found = false;
        for (auto& [links, acc] : merged) {
          if (links == wp.path.links) {
            acc += add;
            found = true;
            break;
          }
        }
        if (!found) merged.emplace_back(std::move(wp.path.links), add);
      }
      total += rate;
    }
    if (total <= kEps) continue;
    alloc.allocated_gbps = total;
    alloc.paths.reserve(merged.size());
    for (auto& [links, rate] : merged) {
      alloc.paths.push_back({te::Path{std::move(links)}, rate / total});
    }
  }
  st.stitch_s = since(t_stitch);

  // ---- 6. Settle pass: guarantee feasibility. Collapsed segment splits
  // and min-fraction stitching can leave a link oversubscribed; scale each
  // offending allocation down by its worst link's capacity ratio.
  if (options.settle) {
    std::vector<double> load(topo.num_links(), 0.0);
    for (const te::Allocation& a : out.allocations) {
      for (const te::WeightedPath& wp : a.paths) {
        double r = a.allocated_gbps * wp.weight;
        for (topo::LinkId l : wp.path.links) load[l] += r;
      }
    }
    std::vector<double> scale(topo.num_links(), 1.0);
    for (const topo::Link& l : topo.links()) {
      if (load[l.id] > l.capacity_gbps + kEps) {
        scale[l.id] = l.capacity_gbps / load[l.id];
      }
    }
    for (te::Allocation& a : out.allocations) {
      double factor = 1.0;
      for (const te::WeightedPath& wp : a.paths) {
        if (wp.weight <= kEps) continue;
        for (topo::LinkId l : wp.path.links) {
          factor = std::min(factor, scale[l]);
        }
      }
      if (factor < 1.0) {
        a.allocated_gbps *= factor;
        ++st.settle_scaled;
      }
    }
  }

  st.wall_time_s = since(t_start);
  static obs::Counter& c_solves =
      obs::Registry::global().counter("hier.solve.count");
  static obs::Counter& c_segments =
      obs::Registry::global().counter("hier.solve.segments");
  static obs::Counter& c_settled =
      obs::Registry::global().counter("hier.solve.settle_scaled");
  c_solves.add(1);
  c_segments.add(st.segment_demands);
  c_settled.add(st.settle_scaled);
  return out;
}

GapReport check_optimality_gap(const topo::Topology& topo,
                               const traffic::TrafficMatrix& tm,
                               const te::Solution& hier_solution,
                               const te::Solution& flat_solution,
                               const GapOptions& options) {
  GapReport report;
  char buf[256];
  auto fail = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    report.violations.emplace_back(buf);
  };

  if (hier_solution.allocations.size() != tm.size()) {
    fail("allocation count %zu != demand count %zu",
         hier_solution.allocations.size(), tm.size());
    return report;
  }

  std::vector<double> load(topo.num_links(), 0.0);
  for (std::size_t i = 0; i < tm.size(); ++i) {
    const traffic::Demand& d = tm.demands()[i];
    const te::Allocation& a = hier_solution.allocations[i];
    if (!(a.demand == d)) {
      fail("allocation %zu demand mismatch (order not preserved)", i);
      continue;
    }
    if (a.allocated_gbps < -kEps ||
        a.allocated_gbps > d.rate_gbps * (1.0 + 1e-6) + kEps) {
      fail("allocation %zu rate %.6f outside [0, %.6f]", i, a.allocated_gbps,
           d.rate_gbps);
    }
    if (a.allocated_gbps <= kEps) continue;
    double wsum = 0.0;
    for (const te::WeightedPath& wp : a.paths) {
      wsum += wp.weight;
      if (wp.weight < -kEps) {
        fail("allocation %zu has negative path weight", i);
      }
      if (wp.path.empty()) {
        if (d.src != d.dst) fail("allocation %zu has empty path", i);
        continue;
      }
      if (!wp.path.is_valid(topo)) {
        fail("allocation %zu path invalid (broken chain, down link, or loop)",
             i);
        continue;
      }
      if (wp.path.src(topo) != d.src || wp.path.dst(topo) != d.dst) {
        fail("allocation %zu path endpoints do not match demand", i);
        continue;
      }
      for (topo::LinkId l : wp.path.links) {
        load[l] += a.allocated_gbps * wp.weight;
      }
    }
    if (d.src != d.dst && std::abs(wsum - 1.0) > 1e-4) {
      fail("allocation %zu path weights sum to %.6f (want 1)", i, wsum);
    }
  }
  for (const topo::Link& l : topo.links()) {
    if (load[l.id] > l.capacity_gbps + options.capacity_slack_gbps) {
      fail("link %u oversubscribed: load %.6f > capacity %.6f", l.id,
           load[l.id], l.capacity_gbps);
    }
  }

  report.hier_total_gbps = hier_solution.total_allocated_gbps();
  report.flat_total_gbps = flat_solution.total_allocated_gbps();
  if (report.flat_total_gbps > kEps) {
    report.gap_fraction =
        (report.flat_total_gbps - report.hier_total_gbps) /
        report.flat_total_gbps;
  }
  if (options.max_gap_fraction > 0.0 &&
      report.gap_fraction > options.max_gap_fraction) {
    fail("throughput gap %.4f exceeds bound %.4f", report.gap_fraction,
         options.max_gap_fraction);
  }
  return report;
}

}  // namespace dsdn::hier
