#pragma once

// Logical-node aggregation ("Recursive SDN for Carrier Networks",
// PAPERS.md): each region collapses to one logical node, each region pair
// with inter-region fibers to one directed logical link whose capacity is
// the sum of its member links. The LogicalNode additionally summarizes the
// region's interior as a border-to-border transit-capacity matrix (widest
// intra-region path bottleneck), which the two-level solver uses to reject
// logical hops the region cannot actually carry.
//
// Rebuilding the abstraction is O(links + borders^2 * region_size), cheap
// enough to redo per solve -- which keeps it consistent with link state by
// construction instead of by invalidation protocol.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hier/partition.hpp"
#include "topo/topology.hpp"

namespace dsdn::hier {

struct LogicalNode {
  std::uint32_t region = 0;
  std::vector<topo::NodeId> borders;  // concrete border routers, ascending
  // transit_gbps[i * borders.size() + j]: widest intra-region bottleneck
  // from borders[i] to borders[j] over up links; 0 when disconnected.
  std::vector<double> transit_gbps;

  double transit(std::size_t i, std::size_t j) const {
    return transit_gbps[i * borders.size() + j];
  }
};

struct LogicalTopology {
  // One node per region; one directed link per region pair with live
  // inter-region members. Node/region indices coincide.
  topo::Topology graph;
  std::vector<LogicalNode> nodes;
  // logical LinkId -> concrete inter-region member links (up only,
  // ascending by id). Aggregate capacity = sum of member capacities.
  std::vector<std::vector<topo::LinkId>> members;
  // concrete LinkId -> logical LinkId (kInvalidLink for intra-region or
  // down links).
  std::vector<topo::LinkId> logical_of;
};

// Builds the logical view of `topo` under `partition`. Only up links
// contribute capacity; a region pair whose members are all down gets no
// logical link (matching how flooding would expose the cut).
LogicalTopology build_logical(const topo::Topology& topo,
                              const RegionPartition& partition);

}  // namespace dsdn::hier
