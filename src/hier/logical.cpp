#include "hier/logical.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <string>

namespace dsdn::hier {
namespace {

// Widest-bottleneck distances from one border to every node, walking only
// up links interior to `region`. A max-heap Dijkstra variant on bottleneck
// capacity.
void widest_from(const topo::Topology& topo, const RegionPartition& part,
                 std::uint32_t region, topo::NodeId source,
                 std::vector<double>& width) {
  width.assign(topo.num_nodes(), 0.0);
  width[source] = std::numeric_limits<double>::infinity();
  std::priority_queue<std::pair<double, topo::NodeId>> heap;
  heap.emplace(width[source], source);
  while (!heap.empty()) {
    auto [w, n] = heap.top();
    heap.pop();
    if (w < width[n]) continue;
    for (topo::LinkId lid : topo.node(n).out_links) {
      const topo::Link& l = topo.link(lid);
      if (!l.up) continue;
      if (part.region_of[l.dst] != region) continue;
      double cand = std::min(w, l.capacity_gbps);
      if (cand > width[l.dst]) {
        width[l.dst] = cand;
        heap.emplace(cand, l.dst);
      }
    }
  }
}

}  // namespace

LogicalTopology build_logical(const topo::Topology& topo,
                              const RegionPartition& partition) {
  LogicalTopology out;
  out.logical_of.assign(topo.num_links(), topo::kInvalidLink);
  out.nodes.resize(partition.n_regions);

  for (std::uint32_t r = 0; r < partition.n_regions; ++r) {
    out.graph.add_node("region" + std::to_string(r));
    LogicalNode& ln = out.nodes[r];
    ln.region = r;
    ln.borders = partition.borders[r];
    std::size_t b = ln.borders.size();
    ln.transit_gbps.assign(b * b, 0.0);
    std::vector<double> width;
    for (std::size_t i = 0; i < b; ++i) {
      widest_from(topo, partition, r, ln.borders[i], width);
      for (std::size_t j = 0; j < b; ++j) {
        if (i == j) {
          ln.transit_gbps[i * b + j] =
              std::numeric_limits<double>::infinity();
        } else {
          ln.transit_gbps[i * b + j] = width[ln.borders[j]];
        }
      }
    }
  }

  // Group inter-region up links by ordered region pair; std::map keeps the
  // logical link numbering deterministic.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<topo::LinkId>>
      pairs;
  for (const topo::Link& l : topo.links()) {
    std::uint32_t a = partition.region_of[l.src];
    std::uint32_t b = partition.region_of[l.dst];
    if (a == b || !l.up) continue;
    pairs[{a, b}].push_back(l.id);
  }
  for (auto& [key, concrete] : pairs) {
    std::sort(concrete.begin(), concrete.end());
    double cap = 0.0;
    double metric = std::numeric_limits<double>::infinity();
    double delay = std::numeric_limits<double>::infinity();
    for (topo::LinkId lid : concrete) {
      const topo::Link& l = topo.link(lid);
      cap += l.capacity_gbps;
      metric = std::min(metric, l.igp_metric);
      delay = std::min(delay, l.delay_s);
    }
    topo::LinkId logical =
        out.graph.add_link(key.first, key.second, cap, metric, delay);
    out.members.push_back(concrete);
    for (topo::LinkId lid : concrete) out.logical_of[lid] = logical;
  }
  return out;
}

}  // namespace dsdn::hier
