#include "hier/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "sim/convergence.hpp"
#include "te/parallel_solver.hpp"
#include "util/rng.hpp"

namespace dsdn::hier {
namespace {

const char* kEventNames[] = {"plane_local_cut", "plane_local_repair",
                             "cross_plane_srlg", "plane_crash",
                             "plane_restore"};

// True iff every node stays reachable from node 0 over up links after
// also excluding `fiber` and its reverse -- the same connectivity guard
// pick_failure_fibers applies, re-checked against the plane's *current*
// up set (earlier events may already have removed fibers).
bool cut_keeps_connected(const topo::Topology& topo, topo::LinkId fiber) {
  if (topo.num_nodes() == 0) return true;
  topo::LinkId reverse = topo.link(fiber).reverse;
  std::vector<char> seen(topo.num_nodes(), 0);
  std::deque<topo::NodeId> queue{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!queue.empty()) {
    topo::NodeId n = queue.front();
    queue.pop_front();
    for (topo::LinkId lid : topo.node(n).out_links) {
      const topo::Link& l = topo.link(lid);
      if (!l.up || lid == fiber || lid == reverse) continue;
      if (!seen[l.dst]) {
        seen[l.dst] = 1;
        ++visited;
        queue.push_back(l.dst);
      }
    }
  }
  return visited == topo.num_nodes();
}

struct Harness {
  const PlaneScenarioOptions& options;
  PlaneRuntime& runtime;
  PlaneScenarioResult& result;
  std::size_t base_flows;
  double base_rate;

  void fail(std::string msg) { result.violations.push_back(std::move(msg)); }

  // The full post-event battery: per-plane invariants plus the
  // cross-plane properties.
  void check(const char* context) {
    char buf[160];
    for (std::size_t p = 0; p < runtime.num_planes(); ++p) {
      if (!runtime.plane_alive(p)) continue;
      const sim::DsdnEmulation& emu = runtime.plane(p);
      if (!emu.views_converged()) {
        std::snprintf(buf, sizeof(buf), "[%s] plane %zu views diverged",
                      context, p);
        fail(buf);
      }
      auto report = sim::check_invariants(emu, options.invariants);
      result.invariant_checks += report.checks_run;
      for (const std::string& v : report.violations) {
        std::snprintf(buf, sizeof(buf), "[%s] plane %zu: ", context, p);
        fail(buf + v);
      }
      if (options.packet_scoring && options.fib_cores > 0 &&
          !runtime.plane_demands(p).empty()) {
        sim::PacketScoreOptions score_options;
        score_options.packets = options.score_packets;
        score_options.seed = 0x5C0BEULL ^ p;
        auto score = sim::score_packets(emu, score_options);
        result.packets_scored += score.packets;
        if (score.hard_drops != 0) {
          std::snprintf(buf, sizeof(buf),
                        "[%s] plane %zu: %zu packet hard drops", context, p,
                        score.hard_drops);
          fail(buf);
        }
      }
    }
    // Cross-plane demand conservation: rebalancing must neither lose nor
    // duplicate flows.
    if (runtime.total_flows() != base_flows) {
      std::snprintf(buf, sizeof(buf),
                    "[%s] flow conservation: %zu across planes, want %zu",
                    context, runtime.total_flows(), base_flows);
      fail(buf);
    }
    if (std::abs(runtime.total_rate_gbps() - base_rate) > 1e-6) {
      std::snprintf(buf, sizeof(buf),
                    "[%s] rate conservation: %.6f across planes, want %.6f",
                    context, runtime.total_rate_gbps(), base_rate);
      fail(buf);
    }
    // Placement agreement: every demand row sits where HRW (and thus
    // every packet of the flow) says it belongs.
    for (std::size_t p = 0; p < runtime.num_planes(); ++p) {
      if (!runtime.plane_alive(p)) continue;
      for (const traffic::Demand& d : runtime.plane_demands(p)) {
        if (runtime.plane_of(d.src, d.dst, d.priority) != p) {
          std::snprintf(buf, sizeof(buf),
                        "[%s] demand %u->%u on plane %zu disagrees with HRW",
                        context, d.src, d.dst, p);
          fail(buf);
          break;
        }
      }
    }
  }

  void record_rebalance(const RebalanceReport& report, std::size_t alive_before,
                        const char* context) {
    ++result.rebalances;
    result.packets_scored += report.scored_packets;
    result.max_exposed_fraction =
        std::max(result.max_exposed_fraction, report.exposed_fraction);
    char buf[160];
    if (report.score_hard_drops != 0) {
      std::snprintf(buf, sizeof(buf), "[%s] %zu hard drops after rebalance",
                    context, report.score_hard_drops);
      fail(buf);
    }
    double bound =
        1.0 / static_cast<double>(alive_before) + options.exposure_slack;
    if (report.exposed_fraction >= bound) {
      std::snprintf(buf, sizeof(buf),
                    "[%s] exposed %.4f of flows >= bound %.4f", context,
                    report.exposed_fraction, bound);
      fail(buf);
    }
  }
};

}  // namespace

const char* plane_event_name(PlaneEventKind kind) {
  return kEventNames[static_cast<std::size_t>(kind)];
}

std::uint64_t PlaneScenarioResult::fingerprint() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h = util::splitmix64(h ^ v);
  };
  for (const std::string& e : events) {
    for (char c : e) mix(static_cast<std::uint64_t>(c));
  }
  mix(violations.size());
  mix(events_applied);
  mix(events_skipped);
  mix(invariant_checks);
  mix(packets_scored);
  mix(rebalances);
  mix(static_cast<std::uint64_t>(max_exposed_fraction * 1e9));
  return h;
}

PlaneScenarioResult run_plane_scenario(const topo::Topology& base,
                                       const traffic::TrafficMatrix& tm,
                                       const PlaneScenarioOptions& options,
                                       std::uint64_t seed) {
  PlaneScenarioResult result;
  std::size_t n_threads =
      options.n_threads == 0 ? options.planes : options.n_threads;
  te::ThreadPool pool(n_threads);

  PlaneRuntimeConfig config;
  config.planes = options.planes;
  config.emulation = options.emulation;
  config.fib_cores = options.fib_cores;
  config.score_packets = options.score_packets;
  config.pool = &pool;
  PlaneRuntime runtime(base, tm, config);
  runtime.bootstrap();

  Harness harness{options, runtime, result, runtime.total_flows(),
                  runtime.total_rate_gbps()};
  harness.check("bootstrap");
  if (!result.ok()) return result;

  // Candidate conduits: duplex representatives whose base-topology removal
  // keeps the graph connected (re-guarded per plane at apply time).
  util::Rng rng(seed);
  std::vector<topo::LinkId> conduits =
      sim::pick_failure_fibers(base, 8, util::splitmix64(seed));
  if (conduits.empty()) return result;

  // (plane, fiber) pairs currently down, repair candidates.
  std::vector<std::pair<std::size_t, topo::LinkId>> down;
  char buf[96];

  for (std::size_t ev = 0; ev < options.n_events; ++ev) {
    std::size_t alive = runtime.num_alive();
    std::size_t dead = runtime.num_planes() - alive;
    double weights[5] = {
        options.w_cut,
        down.empty() ? 0.0 : options.w_repair,
        options.w_srlg,
        alive >= 2 ? options.w_crash : 0.0,
        dead > 0 ? options.w_restore : 0.0,
    };
    auto kind = static_cast<PlaneEventKind>(
        rng.weighted_pick(std::span<const double>(weights, 5)));
    const char* name = plane_event_name(kind);

    switch (kind) {
      case PlaneEventKind::kPlaneLocalCut: {
        // A live plane and a conduit whose plane-local fiber is up and
        // safe to cut.
        std::size_t p = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(
                                   runtime.num_planes() - 1)));
        topo::LinkId fiber =
            conduits[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(conduits.size() - 1)))];
        if (!runtime.plane_alive(p) ||
            !runtime.plane(p).network().link(fiber).up ||
            !cut_keeps_connected(runtime.plane(p).network(), fiber)) {
          ++result.events_skipped;
          continue;
        }
        runtime.fail_fiber_in_plane(p, fiber);
        down.push_back({p, fiber});
        std::snprintf(buf, sizeof(buf), "%s plane=%zu fiber=%u", name, p,
                      fiber);
        break;
      }
      case PlaneEventKind::kPlaneLocalRepair: {
        std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(down.size() - 1)));
        auto [p, fiber] = down[i];
        down.erase(down.begin() + static_cast<std::ptrdiff_t>(i));
        if (!runtime.plane_alive(p)) {
          ++result.events_skipped;
          continue;
        }
        runtime.repair_fiber_in_plane(p, fiber);
        std::snprintf(buf, sizeof(buf), "%s plane=%zu fiber=%u", name, p,
                      fiber);
        break;
      }
      case PlaneEventKind::kCrossPlaneSrlg: {
        topo::LinkId fiber =
            conduits[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(conduits.size() - 1)))];
        bool applicable = true;
        for (std::size_t p = 0; p < runtime.num_planes(); ++p) {
          if (!runtime.plane_alive(p)) continue;
          if (!runtime.plane(p).network().link(fiber).up ||
              !cut_keeps_connected(runtime.plane(p).network(), fiber)) {
            applicable = false;
            break;
          }
        }
        if (!applicable) {
          ++result.events_skipped;
          continue;
        }
        runtime.fail_conduit(fiber);
        for (std::size_t p = 0; p < runtime.num_planes(); ++p) {
          if (runtime.plane_alive(p)) down.push_back({p, fiber});
        }
        std::snprintf(buf, sizeof(buf), "%s fiber=%u", name, fiber);
        break;
      }
      case PlaneEventKind::kPlaneCrash: {
        std::size_t p = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(
                                   runtime.num_planes() - 1)));
        if (!runtime.plane_alive(p) || runtime.num_alive() < 2) {
          ++result.events_skipped;
          continue;
        }
        std::size_t alive_before = runtime.num_alive();
        auto report = runtime.fail_plane(p);
        std::snprintf(buf, sizeof(buf), "%s plane=%zu moved=%zu", name, p,
                      report.moved_flows);
        result.events.emplace_back(buf);
        ++result.events_applied;
        harness.record_rebalance(report, alive_before, name);
        harness.check(name);
        if (!result.ok()) return result;
        continue;
      }
      case PlaneEventKind::kPlaneRestore: {
        std::size_t p = runtime.num_planes();
        for (std::size_t q = 0; q < runtime.num_planes(); ++q) {
          if (!runtime.plane_alive(q)) {
            p = q;
            break;
          }
        }
        if (p == runtime.num_planes()) {
          ++result.events_skipped;
          continue;
        }
        auto report = runtime.restore_plane(p);
        std::snprintf(buf, sizeof(buf), "%s plane=%zu moved=%zu", name, p,
                      report.moved_flows);
        result.events.emplace_back(buf);
        ++result.events_applied;
        result.packets_scored += report.scored_packets;
        ++result.rebalances;
        if (report.score_hard_drops != 0) {
          harness.fail("hard drops after plane restore");
        }
        harness.check(name);
        if (!result.ok()) return result;
        continue;
      }
    }
    result.events.emplace_back(buf);
    ++result.events_applied;
    harness.check(name);
    if (!result.ok()) return result;
  }
  return result;
}

std::optional<PlaneSwarmFailure> run_plane_swarm(
    const topo::Topology& base, const traffic::TrafficMatrix& tm,
    const PlaneScenarioOptions& options, std::uint64_t first_seed,
    std::size_t n_seeds) {
  for (std::size_t i = 0; i < n_seeds; ++i) {
    std::uint64_t seed = first_seed + i;
    auto result = run_plane_scenario(base, tm, options, seed);
    if (!result.ok()) return PlaneSwarmFailure{seed, std::move(result)};
  }
  return std::nullopt;
}

}  // namespace dsdn::hier
