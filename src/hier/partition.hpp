#pragma once

// Region partitioner for the hierarchical plane runtime ("Recursive SDN
// for Carrier Networks", PAPERS.md): carves a WAN into a handful of
// connected regions so the top-level TE solve runs over O(regions)
// logical nodes instead of O(routers).
//
// The partitioner is metro-aware: nodes sharing a metro tag (the unit the
// synthetic B4/B2 generators and the Zoo reconstructions both populate)
// are never split across regions -- a metro's full-mesh routers summarize
// badly when torn apart. Topologies without metro tags degrade gracefully
// to node-granularity clustering. Growth is balanced multi-source BFS
// from farthest-first seeds, so every region is connected by
// construction (a requirement of the per-region solves, which restrict
// path search to intra-region links).

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace dsdn::hier {

struct RegionPartition {
  std::size_t n_regions = 0;
  // node -> region index (every node is assigned).
  std::vector<std::uint32_t> region_of;
  // region -> member nodes, ascending.
  std::vector<std::vector<topo::NodeId>> members;
  // region -> border nodes (endpoints of inter-region links), ascending.
  std::vector<std::vector<topo::NodeId>> borders;

  bool intra_region(const topo::Link& l) const {
    return region_of[l.src] == region_of[l.dst];
  }
};

struct PartitionOptions {
  // 0 = auto: ~sqrt(nodes), clamped to [2, #metros] -- the size that
  // balances the top-level solve against the per-region solves.
  std::size_t n_regions = 0;
  // A region stops absorbing metros once it holds more than
  // target * (1 + balance_slack) nodes; the cap relaxes automatically if
  // growth stalls before every metro is assigned.
  double balance_slack = 0.15;
};

// Pure function of (topology, options): deterministic across runs.
RegionPartition partition_regions(const topo::Topology& topo,
                                  const PartitionOptions& options = {});

}  // namespace dsdn::hier
