#pragma once

// Convenience construction of topologies from compact edge-list specs,
// used by the TopologyZoo reconstructions and tests.

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace dsdn::topo {

struct EdgeSpec {
  std::string a;
  std::string b;
  double capacity_gbps = 100.0;
  double igp_metric = 1.0;
  double delay_ms = 1.0;
};

struct NodeSpec {
  std::string name;
  std::string metro;          // defaults to `name` when empty
  double gravity_weight = 1.0;
};

// Builds a duplex topology from named nodes and edges. Nodes referenced
// only by edges are created implicitly with default attributes.
Topology build_from_specs(const std::vector<NodeSpec>& nodes,
                          const std::vector<EdgeSpec>& edges);

// True iff every node can reach every other over up links.
bool is_strongly_connected(const Topology& topo);

// Computes the graph diameter in hops over up links (0 for <=1 node).
std::size_t hop_diameter(const Topology& topo);

}  // namespace dsdn::topo
