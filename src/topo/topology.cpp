#include "topo/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace dsdn::topo {

NodeId Topology::add_node(std::string name, std::string metro,
                          double gravity_weight) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.name = std::move(name);
  n.metro = metro.empty() ? n.name : std::move(metro);
  n.gravity_weight = gravity_weight;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, double capacity_gbps,
                          double igp_metric, double delay_s) {
  if (src >= nodes_.size() || dst >= nodes_.size())
    throw std::out_of_range("add_link: bad endpoint");
  if (src == dst) throw std::invalid_argument("add_link: self loop");
  if (capacity_gbps <= 0) throw std::invalid_argument("add_link: capacity <= 0");
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.src = src;
  l.dst = dst;
  l.capacity_gbps = capacity_gbps;
  l.igp_metric = igp_metric;
  l.delay_s = delay_s;
  links_.push_back(l);
  nodes_[src].out_links.push_back(l.id);
  nodes_[dst].in_links.push_back(l.id);
  return l.id;
}

LinkId Topology::add_duplex(NodeId a, NodeId b, double capacity_gbps,
                            double igp_metric, double delay_s) {
  const LinkId fwd = add_link(a, b, capacity_gbps, igp_metric, delay_s);
  const LinkId rev = add_link(b, a, capacity_gbps, igp_metric, delay_s);
  links_[fwd].reverse = rev;
  links_[rev].reverse = fwd;
  return fwd;
}

const Node& Topology::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("node: bad id");
  return nodes_[id];
}

Node& Topology::mutable_node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("mutable_node: bad id");
  return nodes_[id];
}

const Link& Topology::link(LinkId id) const {
  if (id >= links_.size()) throw std::out_of_range("link: bad id");
  return links_[id];
}

void Topology::set_link_up(LinkId id, bool up) {
  if (id >= links_.size()) throw std::out_of_range("set_link_up: bad id");
  links_[id].up = up;
}

void Topology::set_duplex_up(LinkId id, bool up) {
  set_link_up(id, up);
  const LinkId rev = links_[id].reverse;
  if (rev != kInvalidLink) set_link_up(rev, up);
}

void Topology::set_link_capacity(LinkId id, double capacity_gbps) {
  if (id >= links_.size()) throw std::out_of_range("set_link_capacity: bad id");
  if (capacity_gbps <= 0)
    throw std::invalid_argument("set_link_capacity: capacity <= 0");
  links_[id].capacity_gbps = capacity_gbps;
}

void Topology::set_duplex_capacity(LinkId id, double capacity_gbps) {
  set_link_capacity(id, capacity_gbps);
  const LinkId rev = links_[id].reverse;
  if (rev != kInvalidLink) set_link_capacity(rev, capacity_gbps);
}

std::vector<NodeId> Topology::up_neighbors(NodeId n) const {
  std::vector<NodeId> out;
  for (LinkId lid : node(n).out_links) {
    if (links_[lid].up) out.push_back(links_[lid].dst);
  }
  return out;
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (const Node& n : nodes_) best = std::max(best, n.out_links.size());
  return best;
}

LinkId Topology::find_link(NodeId src, NodeId dst) const {
  for (LinkId lid : node(src).out_links) {
    const Link& l = links_[lid];
    if (l.dst == dst && l.up) return lid;
  }
  return kInvalidLink;
}

std::vector<std::string> Topology::metros() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Node& n : nodes_) {
    if (seen.insert(n.metro).second) out.push_back(n.metro);
  }
  return out;
}

void Topology::validate() const {
  for (const Link& l : links_) {
    if (l.src >= nodes_.size() || l.dst >= nodes_.size())
      throw std::logic_error("validate: link endpoint out of range");
    if (l.reverse != kInvalidLink) {
      const Link& r = links_.at(l.reverse);
      if (r.src != l.dst || r.dst != l.src || r.reverse != l.id)
        throw std::logic_error("validate: inconsistent reverse pointer");
    }
  }
  for (const Node& n : nodes_) {
    for (LinkId lid : n.out_links) {
      if (links_.at(lid).src != n.id)
        throw std::logic_error("validate: out_links inconsistent");
    }
    for (LinkId lid : n.in_links) {
      if (links_.at(lid).dst != n.id)
        throw std::logic_error("validate: in_links inconsistent");
    }
  }
}

}  // namespace dsdn::topo
