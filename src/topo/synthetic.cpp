#include "topo/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "util/rng.hpp"

namespace dsdn::topo {

namespace {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double dist_km(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// Propagation delay in seconds for a fiber of the given route length.
// Light in fiber covers ~200,000 km/s; routes are ~1.3x line-of-sight.
double fiber_delay_s(double km) { return 1.3 * km / 200000.0; }

// Plane dimensions, continental scale.
constexpr double kPlaneX = 5000.0;
constexpr double kPlaneY = 3000.0;

std::vector<Point> scatter(std::size_t n, util::Rng& rng) {
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, kPlaneX);
    p.y = rng.uniform(0.0, kPlaneY);
  }
  return pts;
}

// Prim MST over point set; returns edges (i, j).
std::vector<std::pair<std::size_t, std::size_t>> mst_edges(
    const std::vector<Point>& pts) {
  const std::size_t n = pts.size();
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  if (n < 2) return edges;
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> parent(n, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) best[j] = dist_km(pts[0], pts[j]);
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    double pick_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < pick_d) {
        pick = j;
        pick_d = best[j];
      }
    }
    in_tree[pick] = true;
    edges.emplace_back(parent[pick], pick);
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j]) {
        const double d = dist_km(pts[pick], pts[j]);
        if (d < best[j]) {
          best[j] = d;
          parent[j] = pick;
        }
      }
    }
  }
  return edges;
}

}  // namespace

namespace detail {

Topology make_geo_network(const GeoNetworkParams& params) {
  util::Rng rng(params.seed);
  Topology topo;
  const std::size_t n_hubs = std::min(params.n_hubs, params.n_nodes);
  const auto hub_pts = scatter(n_hubs, rng);

  // Hubs: one per metro, higher gravity weight.
  for (std::size_t h = 0; h < n_hubs; ++h) {
    const std::string name =
        std::string(params.name_prefix) + "-hub" + std::to_string(h);
    topo.add_node(name, name, rng.uniform(2.0, 4.0));
  }

  std::set<std::pair<NodeId, NodeId>> used;
  auto add_core = [&](std::size_t a, std::size_t b) {
    // Build the pair by value: std::minmax over prvalues returns a pair
    // of references into expired temporaries.
    const std::pair<NodeId, NodeId> key{
        static_cast<NodeId>(std::min(a, b)), static_cast<NodeId>(std::max(a, b))};
    if (a == b || used.contains(key)) return;
    used.insert(key);
    const double d = dist_km(hub_pts[a], hub_pts[b]);
    topo.add_duplex(static_cast<NodeId>(a), static_cast<NodeId>(b),
                    params.capacity_core_gbps, std::max(1.0, d / 100.0),
                    fiber_delay_s(d));
  };

  for (const auto& [a, b] : mst_edges(hub_pts)) add_core(a, b);

  // Waxman-style chords: prefer shorter candidate pairs.
  std::size_t chords_added = 0;
  std::size_t attempts = 0;
  const double scale_l = std::sqrt(kPlaneX * kPlaneX + kPlaneY * kPlaneY);
  while (chords_added < params.extra_core_chords &&
         attempts < params.extra_core_chords * 50 + 100) {
    ++attempts;
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_hubs) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_hubs) - 1));
    if (a == b) continue;
    const double d = dist_km(hub_pts[a], hub_pts[b]);
    if (!rng.bernoulli(std::exp(-d / (0.25 * scale_l)))) continue;
    const std::pair<NodeId, NodeId> key{
        static_cast<NodeId>(std::min(a, b)), static_cast<NodeId>(std::max(a, b))};
    if (used.contains(key)) continue;
    add_core(a, b);
    ++chords_added;
  }

  // Spur nodes: attach to the nearest hub plus avg_spur_degree more.
  for (std::size_t i = n_hubs; i < params.n_nodes; ++i) {
    Point p{rng.uniform(0.0, kPlaneX), rng.uniform(0.0, kPlaneY)};
    // Rank hubs by distance.
    std::vector<std::size_t> order(n_hubs);
    for (std::size_t h = 0; h < n_hubs; ++h) order[h] = h;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return dist_km(p, hub_pts[a]) < dist_km(p, hub_pts[b]);
    });
    const std::string metro = topo.node(static_cast<NodeId>(order[0])).metro;
    const NodeId id = topo.add_node(
        std::string(params.name_prefix) + "-" + std::to_string(i), metro,
        rng.uniform(0.5, 1.5));
    const std::size_t uplinks = 1 + params.avg_spur_degree;
    for (std::size_t k = 0; k < std::min(uplinks, n_hubs); ++k) {
      const double d = dist_km(p, hub_pts[order[k]]);
      topo.add_duplex(id, static_cast<NodeId>(order[k]),
                      params.capacity_spur_gbps, std::max(1.0, d / 100.0),
                      fiber_delay_s(d));
    }
  }

  topo.validate();
  return topo;
}

}  // namespace detail

namespace {

// Shared metro-mesh generator for B4/B2-like WANs: metros on a plane, each
// holding `routers_per_metro` fully-meshed routers; metro-level MST +
// Waxman chords, each metro-level adjacency realized as duplex links
// between randomly chosen border routers.
Topology make_metro_wan(std::size_t n_metros, std::size_t routers_per_metro,
                        std::size_t extra_metro_chords, double core_gbps,
                        std::uint64_t seed, const char* prefix) {
  util::Rng rng(seed);
  Topology topo;
  const auto metro_pts = scatter(n_metros, rng);

  std::vector<std::vector<NodeId>> metro_routers(n_metros);
  for (std::size_t m = 0; m < n_metros; ++m) {
    const std::string metro = std::string(prefix) + std::to_string(m);
    const double metro_weight = rng.uniform(0.5, 4.0);
    for (std::size_t r = 0; r < routers_per_metro; ++r) {
      metro_routers[m].push_back(topo.add_node(
          metro + "r" + std::to_string(r), metro, metro_weight));
    }
    // Intra-metro full mesh: short, fat links.
    for (std::size_t a = 0; a < routers_per_metro; ++a) {
      for (std::size_t b = a + 1; b < routers_per_metro; ++b) {
        topo.add_duplex(metro_routers[m][a], metro_routers[m][b],
                        core_gbps * 4.0, 1.0, 50e-6);
      }
    }
  }

  std::set<std::pair<std::size_t, std::size_t>> metro_used;
  auto add_metro_edge = [&](std::size_t a, std::size_t b) {
    auto key = std::minmax(a, b);
    if (a == b || metro_used.contains(key)) return;
    metro_used.insert(key);
    const double d = dist_km(metro_pts[a], metro_pts[b]);
    // Two parallel duplex links between distinct router pairs for
    // intra-metro failure diversity (as in real WAN metros).
    for (int dup = 0; dup < 2; ++dup) {
      const auto& ra = rng.pick(metro_routers[a]);
      const auto& rb = rng.pick(metro_routers[b]);
      topo.add_duplex(ra, rb, core_gbps, std::max(1.0, d / 100.0),
                      fiber_delay_s(d));
    }
  };

  for (const auto& [a, b] : mst_edges(metro_pts)) add_metro_edge(a, b);

  const double scale_l = std::sqrt(kPlaneX * kPlaneX + kPlaneY * kPlaneY);
  std::size_t chords = 0;
  std::size_t attempts = 0;
  while (chords < extra_metro_chords && attempts < extra_metro_chords * 60) {
    ++attempts;
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_metros) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_metros) - 1));
    if (a == b) continue;
    const double d = dist_km(metro_pts[a], metro_pts[b]);
    if (!rng.bernoulli(std::exp(-d / (0.3 * scale_l)))) continue;
    auto key = std::minmax(a, b);
    if (metro_used.contains(key)) continue;
    add_metro_edge(a, b);
    ++chords;
  }

  topo.validate();
  return topo;
}

}  // namespace

Topology make_b4_like(const B4LikeParams& params) {
  return make_metro_wan(params.n_metros, params.routers_per_metro,
                        params.n_metros, 100.0, params.seed, "m");
}

Topology make_b2_like(const B2LikeParams& params) {
  const auto metros = static_cast<std::size_t>(
      std::max(4.0, std::round(static_cast<double>(params.n_metros) *
                               params.scale)));
  // B2 is denser than B4: ~2 chords per metro.
  return make_metro_wan(metros, params.routers_per_metro, metros * 2, 100.0,
                        params.seed, "b2m");
}

std::vector<GrowthSnapshot> b2_growth_snapshots(std::size_t quarters,
                                                double final_scale) {
  static constexpr const char* kLabels[] = {
      "Jan '20", "May '20", "Sep '20", "Jan '21", "May '21", "Sep '21",
      "Jan '22", "May '22", "Sep '22", "Jan '23", "May '23", "Sep '23"};
  std::vector<GrowthSnapshot> out;
  for (std::size_t q = 0; q < quarters; ++q) {
    const double frac = static_cast<double>(q + 1) /
                        static_cast<double>(quarters);
    B2LikeParams p;
    p.scale = final_scale * (0.35 + 0.65 * frac);
    const char* label = q < std::size(kLabels) ? kLabels[q] : "later";
    out.push_back({label, make_b2_like(p)});
  }
  return out;
}

std::vector<GrowthSnapshot> b2_growth_extrapolated(std::size_t points,
                                                   double max_scale) {
  std::vector<GrowthSnapshot> out;
  if (points == 0) return out;
  for (std::size_t i = 0; i < points; ++i) {
    // Log-spaced scales 1.0 .. max_scale: growth curves compound, so the
    // extrapolation steps multiplicatively like Fig 16's history does.
    const double frac = points == 1 ? 1.0
                                    : static_cast<double>(i) /
                                          static_cast<double>(points - 1);
    const double scale = std::pow(max_scale, frac);
    B2LikeParams p;
    p.scale = scale;
    char label[32];
    std::snprintf(label, sizeof(label), "B2x%.2g", scale);
    out.push_back({label, make_b2_like(p)});
  }
  return out;
}

Topology make_line(std::size_t n, double capacity_gbps) {
  Topology topo;
  for (std::size_t i = 0; i < n; ++i)
    topo.add_node("n" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                    capacity_gbps);
  }
  return topo;
}

Topology make_ring(std::size_t n, double capacity_gbps) {
  Topology topo = make_line(n, capacity_gbps);
  if (n > 2) {
    topo.add_duplex(static_cast<NodeId>(n - 1), 0, capacity_gbps);
  }
  return topo;
}

Topology make_full_mesh(std::size_t n, double capacity_gbps) {
  Topology topo;
  for (std::size_t i = 0; i < n; ++i)
    topo.add_node("n" + std::to_string(i));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      topo.add_duplex(static_cast<NodeId>(a), static_cast<NodeId>(b),
                      capacity_gbps);
    }
  }
  return topo;
}

Topology make_fig5() {
  // The three-router example of Fig 5: R0 (ingress), R2 (transit),
  // R1 (egress), with parallel paths R0->R1 direct and via R2.
  Topology topo;
  const NodeId r0 = topo.add_node("R0", "m0");
  const NodeId r1 = topo.add_node("R1", "m1");
  const NodeId r2 = topo.add_node("R2", "m2");
  topo.add_duplex(r0, r1, 100.0, 2.0, 1e-3);  // direct
  topo.add_duplex(r0, r2, 100.0, 1.0, 1e-3);
  topo.add_duplex(r2, r1, 100.0, 1.0, 1e-3);
  return topo;
}

}  // namespace dsdn::topo
