#pragma once

// WAN topology model.
//
// Routers (nodes) are joined by *directed* links: dSDN's data plane
// addresses each direction of a fiber independently (a source route is a
// sequence of directed-link IDs), and capacities/failures are tracked per
// direction. add_duplex() creates both directions and cross-links them so
// that fiber-cut events can take both down together.
//
// Nodes carry a metro tag (flow groups are keyed by metro pairs, §5.2) and
// a gravity weight used by the traffic generator.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace dsdn::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  std::string metro;        // metro area grouping, e.g. "nyc"
  double gravity_weight = 1.0;  // relative traffic mass for gravity model
  std::vector<LinkId> out_links;
  std::vector<LinkId> in_links;
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double capacity_gbps = 100.0;
  double igp_metric = 1.0;
  double delay_s = 0.001;   // one-way propagation delay
  bool up = true;
  LinkId reverse = kInvalidLink;  // paired opposite-direction link, if any
};

class Topology {
 public:
  NodeId add_node(std::string name, std::string metro = "",
                  double gravity_weight = 1.0);

  // Adds one directed link. Returns its id.
  LinkId add_link(NodeId src, NodeId dst, double capacity_gbps,
                  double igp_metric = 1.0, double delay_s = 0.001);

  // Adds a directed link pair (both directions, cross-referenced).
  // Returns the forward link's id; the reverse is `reverse` of it.
  LinkId add_duplex(NodeId a, NodeId b, double capacity_gbps,
                    double igp_metric = 1.0, double delay_s = 0.001);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }

  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;
  Node& mutable_node(NodeId id);

  std::span<const Node> nodes() const { return nodes_; }
  std::span<const Link> links() const { return links_; }

  // Marks a single directed link up/down.
  void set_link_up(LinkId id, bool up);
  // Takes a duplex pair down/up together (fiber cut / repair).
  void set_duplex_up(LinkId id, bool up);

  // Changes a directed link's capacity (partial capacity loss/restore).
  void set_link_capacity(LinkId id, double capacity_gbps);
  // Applies to both directions of a duplex pair.
  void set_duplex_capacity(LinkId id, double capacity_gbps);

  // Out-neighbors of `n` reachable over *up* links.
  std::vector<NodeId> up_neighbors(NodeId n) const;

  // Maximum out-degree over all nodes (counting all links, up or down);
  // bounds the sublabel table size (Appendix A).
  std::size_t max_degree() const;

  // Returns the id of an up link src->dst, or kInvalidLink.
  LinkId find_link(NodeId src, NodeId dst) const;

  // All metros present, deduplicated, in first-seen order.
  std::vector<std::string> metros() const;

  // Structural sanity: endpoints valid, reverse pointers consistent,
  // adjacency lists consistent. Throws std::logic_error on violation.
  void validate() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
};

}  // namespace dsdn::topo
