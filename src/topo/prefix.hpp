#pragma once

// IP prefixes and the first stage of dSDN's two-stage ingress lookup
// (§3.2): destination IP -> egress router. Prefix origination is carried
// in NSUs; every headend builds this table from its NodeStateDB.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/topology.hpp"

namespace dsdn::topo {

struct Prefix {
  std::uint32_t addr = 0;  // network-order-agnostic host representation
  int len = 24;            // prefix length, 0..32

  std::uint32_t mask() const;
  bool contains(std::uint32_t ip) const;
  std::string to_string() const;

  bool operator==(const Prefix&) const = default;
};

// Parses "a.b.c.d" into the host-order representation used by Prefix.
std::uint32_t parse_ipv4(const std::string& dotted);
std::string format_ipv4(std::uint32_t ip);

// Longest-prefix-match table mapping prefixes to egress routers.
class PrefixTable {
 public:
  // Inserting the same prefix again replaces the egress (latest NSU wins).
  void insert(const Prefix& p, NodeId egress);
  void erase(const Prefix& p);
  void clear();

  std::size_t size() const;

  // Longest-prefix match; nullopt when no covering prefix exists.
  std::optional<NodeId> lookup(std::uint32_t ip) const;

 private:
  // Buckets by prefix length, longest consulted first.
  std::unordered_map<std::uint32_t, NodeId> by_len_[33];
};

// Assigns every router a deterministic /24 under 10.0.0.0/8:
// router k gets 10.(k>>8).(k&255).0/24. Returns the per-router prefix.
std::vector<Prefix> assign_router_prefixes(const Topology& topo);

// A representative host address inside a prefix (the .7 host, as in the
// paper's 1.1.1.7 example).
std::uint32_t host_in(const Prefix& p);

}  // namespace dsdn::topo
