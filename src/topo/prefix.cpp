#include "topo/prefix.hpp"

#include <sstream>
#include <stdexcept>

namespace dsdn::topo {

std::uint32_t Prefix::mask() const {
  if (len < 0 || len > 32) throw std::invalid_argument("prefix len");
  if (len == 0) return 0;
  return ~std::uint32_t{0} << (32 - len);
}

bool Prefix::contains(std::uint32_t ip) const {
  return (ip & mask()) == (addr & mask());
}

std::string Prefix::to_string() const {
  return format_ipv4(addr & mask()) + "/" + std::to_string(len);
}

std::uint32_t parse_ipv4(const std::string& dotted) {
  std::uint32_t out = 0;
  std::istringstream is(dotted);
  for (int i = 0; i < 4; ++i) {
    int octet = -1;
    is >> octet;
    if (octet < 0 || octet > 255) throw std::invalid_argument("bad ipv4");
    out = (out << 8) | static_cast<std::uint32_t>(octet);
    if (i < 3) {
      char dot = 0;
      is >> dot;
      if (dot != '.') throw std::invalid_argument("bad ipv4");
    }
  }
  return out;
}

std::string format_ipv4(std::uint32_t ip) {
  std::ostringstream os;
  os << ((ip >> 24) & 255) << '.' << ((ip >> 16) & 255) << '.'
     << ((ip >> 8) & 255) << '.' << (ip & 255);
  return os.str();
}

void PrefixTable::insert(const Prefix& p, NodeId egress) {
  if (p.len < 0 || p.len > 32) throw std::invalid_argument("prefix len");
  by_len_[p.len][p.addr & p.mask()] = egress;
}

void PrefixTable::erase(const Prefix& p) {
  if (p.len < 0 || p.len > 32) throw std::invalid_argument("prefix len");
  by_len_[p.len].erase(p.addr & p.mask());
}

void PrefixTable::clear() {
  for (auto& bucket : by_len_) bucket.clear();
}

std::size_t PrefixTable::size() const {
  std::size_t total = 0;
  for (const auto& bucket : by_len_) total += bucket.size();
  return total;
}

std::optional<NodeId> PrefixTable::lookup(std::uint32_t ip) const {
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_len_[len];
    if (bucket.empty()) continue;
    const std::uint32_t mask = len == 0 ? 0 : (~std::uint32_t{0} << (32 - len));
    const auto it = bucket.find(ip & mask);
    if (it != bucket.end()) return it->second;
  }
  return std::nullopt;
}

std::vector<Prefix> assign_router_prefixes(const Topology& topo) {
  std::vector<Prefix> out;
  out.reserve(topo.num_nodes());
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    Prefix p;
    p.addr = (10u << 24) | ((n >> 8) << 16) | ((n & 255u) << 8);
    p.len = 24;
    out.push_back(p);
  }
  return out;
}

std::uint32_t host_in(const Prefix& p) { return (p.addr & p.mask()) | 7u; }

}  // namespace dsdn::topo
