#include "topo/builder.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace dsdn::topo {

Topology build_from_specs(const std::vector<NodeSpec>& nodes,
                          const std::vector<EdgeSpec>& edges) {
  Topology topo;
  std::unordered_map<std::string, NodeId> by_name;
  for (const NodeSpec& n : nodes) {
    if (by_name.contains(n.name))
      throw std::invalid_argument("duplicate node name: " + n.name);
    by_name[n.name] = topo.add_node(n.name, n.metro, n.gravity_weight);
  }
  auto resolve = [&](const std::string& name) {
    auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    const NodeId id = topo.add_node(name);
    by_name[name] = id;
    return id;
  };
  for (const EdgeSpec& e : edges) {
    topo.add_duplex(resolve(e.a), resolve(e.b), e.capacity_gbps, e.igp_metric,
                    e.delay_ms * 1e-3);
  }
  topo.validate();
  return topo;
}

namespace {

// BFS reach count from `start` over up links.
std::size_t reach_count(const Topology& topo, NodeId start) {
  std::vector<bool> seen(topo.num_nodes(), false);
  std::deque<NodeId> q{start};
  seen[start] = true;
  std::size_t count = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop_front();
    for (NodeId v : topo.up_neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        q.push_back(v);
      }
    }
  }
  return count;
}

}  // namespace

bool is_strongly_connected(const Topology& topo) {
  if (topo.num_nodes() <= 1) return true;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (reach_count(topo, n) != topo.num_nodes()) return false;
  }
  return true;
}

std::size_t hop_diameter(const Topology& topo) {
  std::size_t best = 0;
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    std::vector<int> dist(topo.num_nodes(), -1);
    std::deque<NodeId> q{s};
    dist[s] = 0;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      for (NodeId v : topo.up_neighbors(u)) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          q.push_back(v);
        }
      }
    }
    for (int d : dist) {
      if (d > 0) best = std::max(best, static_cast<std::size_t>(d));
    }
  }
  return best;
}

}  // namespace dsdn::topo
