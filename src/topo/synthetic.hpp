#pragma once

// Synthetic WAN generators standing in for the paper's production
// topologies (see DESIGN.md substitutions):
//
//   make_b4_like  -- O(100) routers across ~33 metros, datacenter WAN
//                    style: few routers per metro, rich inter-metro mesh.
//   make_b2_like  -- O(1000) routers: ~6x more nodes and ~10x more links
//                    than B4 (§5.3), ISP-backbone style.
//   b2_growth_snapshots -- quarterly snapshots over three years growing
//                    toward ~1000 nodes (Fig 16).
//   make_geo_network (detail) -- deterministic geographic generator used
//                    by the above and by the Zoo reconstructions: hubs on
//                    a plane, Waxman-style core chords, spur attachment.

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace dsdn::topo {

namespace detail {

struct GeoNetworkParams {
  std::size_t n_nodes = 100;
  std::size_t n_hubs = 20;          // core routers forming the backbone
  std::size_t avg_spur_degree = 1;  // extra uplinks per non-hub node
  std::size_t extra_core_chords = 10;
  double capacity_core_gbps = 100.0;
  double capacity_spur_gbps = 10.0;
  std::uint64_t seed = 1;
  const char* name_prefix = "n";
};

Topology make_geo_network(const GeoNetworkParams& params);

}  // namespace detail

struct B4LikeParams {
  std::size_t n_metros = 33;
  std::size_t routers_per_metro = 3;
  std::uint64_t seed = 0xB4B4;
};

Topology make_b4_like(const B4LikeParams& params = {});

struct B2LikeParams {
  // Defaults give ~960 nodes and ~10x B4's links, per §5.3 ("6x more
  // nodes, 10x more links, 30x more flows").
  std::size_t n_metros = 160;
  std::size_t routers_per_metro = 6;
  std::uint64_t seed = 0xB2B2;
  double scale = 1.0;  // scales n_metros; used by growth snapshots
};

Topology make_b2_like(const B2LikeParams& params = {});

struct GrowthSnapshot {
  std::string label;  // e.g. "Jan '20" or "B2x4"
  Topology topo;
};

// Quarterly B2 snapshots, Jan '20 .. Oct '22 (12 snapshots), growing from
// ~1/3 to full B2 scale (Fig 16).
std::vector<GrowthSnapshot> b2_growth_snapshots(std::size_t quarters = 12,
                                                double final_scale = 1.0);

// Extrapolates the Fig 16 growth curve *past* today's B2: `points`
// snapshots at scales log-spaced from 1.0 (today, ~960 nodes) to
// `max_scale` (e.g. 4.0 = "B2x4" ~3.8k nodes, 10.0 ~9.6k nodes) -- the
// 1k-10k node range the hierarchical solve targets. Labels are "B2x<s>".
std::vector<GrowthSnapshot> b2_growth_extrapolated(std::size_t points = 4,
                                                   double max_scale = 10.0);

// Small fixed topologies for tests/examples.
Topology make_line(std::size_t n, double capacity_gbps = 100.0);
Topology make_ring(std::size_t n, double capacity_gbps = 100.0);
Topology make_full_mesh(std::size_t n, double capacity_gbps = 100.0);
// The 3-router / 7-directed-link example of Fig 5 (R0, R1, R2).
Topology make_fig5();

}  // namespace dsdn::topo
