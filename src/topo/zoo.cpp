#include "topo/zoo.hpp"

#include <cmath>

#include "topo/builder.hpp"
#include "topo/synthetic.hpp"

namespace dsdn::topo {

Topology make_abilene() {
  // The Internet2 Abilene backbone: 11 PoPs, 14 bidirectional OC-192
  // (10 Gbps) circuits. Delays approximate great-circle fiber latency.
  std::vector<NodeSpec> nodes = {
      {"seattle", "seattle", 1.2},   {"sunnyvale", "sunnyvale", 2.0},
      {"losangeles", "losangeles", 2.4}, {"denver", "denver", 1.0},
      {"kansascity", "kansascity", 0.9}, {"houston", "houston", 1.5},
      {"chicago", "chicago", 2.2},   {"indianapolis", "indianapolis", 0.8},
      {"atlanta", "atlanta", 1.6},   {"washington", "washington", 2.0},
      {"newyork", "newyork", 2.8},
  };
  std::vector<EdgeSpec> edges = {
      {"seattle", "sunnyvale", 10, 1, 8.0},
      {"seattle", "denver", 10, 1, 10.0},
      {"sunnyvale", "losangeles", 10, 1, 3.0},
      {"sunnyvale", "denver", 10, 1, 9.0},
      {"losangeles", "houston", 10, 1, 12.0},
      {"denver", "kansascity", 10, 1, 5.0},
      {"kansascity", "houston", 10, 1, 7.0},
      {"kansascity", "indianapolis", 10, 1, 4.0},
      {"houston", "atlanta", 10, 1, 9.0},
      {"chicago", "indianapolis", 10, 1, 2.0},
      {"chicago", "newyork", 10, 1, 7.0},
      {"indianapolis", "atlanta", 10, 1, 5.0},
      {"atlanta", "washington", 10, 1, 6.0},
      {"washington", "newyork", 10, 1, 2.5},
  };
  return build_from_specs(nodes, edges);
}

Topology make_geant() {
  // GEANT (2004 snapshot): 23 national research networks. Capacities are a
  // mix of 10G core and 2.5G spurs as in the published map.
  std::vector<NodeSpec> nodes;
  for (const char* cc :
       {"at", "be", "ch", "cy", "cz", "de", "dk", "es", "fr", "gr", "hr",
        "hu", "ie", "il", "it", "lu", "nl", "no", "pl", "pt", "se", "si",
        "uk"}) {
    nodes.push_back({cc, cc, 1.0});
  }
  // Western-core countries source/sink more traffic.
  for (auto& n : nodes) {
    if (n.name == "de" || n.name == "uk" || n.name == "fr" || n.name == "it" ||
        n.name == "nl") {
      n.gravity_weight = 3.0;
    }
  }
  std::vector<EdgeSpec> edges = {
      {"uk", "fr", 10, 1, 4.0},   {"uk", "nl", 10, 1, 3.0},
      {"uk", "ie", 2.5, 1, 3.0},  {"fr", "es", 10, 1, 5.0},
      {"fr", "ch", 10, 1, 3.0},   {"fr", "lu", 2.5, 1, 2.0},
      {"fr", "be", 2.5, 1, 2.0},  {"be", "nl", 2.5, 1, 1.5},
      {"nl", "de", 10, 1, 2.5},   {"de", "dk", 10, 1, 3.0},
      {"de", "cz", 10, 1, 2.5},   {"de", "ch", 10, 1, 3.5},
      {"de", "at", 10, 1, 3.0},   {"de", "lu", 2.5, 1, 2.0},
      {"ch", "it", 10, 1, 3.0},   {"it", "at", 10, 1, 4.0},
      {"it", "gr", 2.5, 1, 7.0},  {"it", "es", 10, 1, 6.0},
      {"it", "il", 2.5, 1, 12.0}, {"at", "hu", 10, 1, 2.0},
      {"at", "si", 2.5, 1, 2.0},  {"at", "cz", 2.5, 1, 2.0},
      {"cz", "pl", 10, 1, 3.0},   {"pl", "de", 10, 1, 4.0},
      {"hu", "hr", 2.5, 1, 2.0},  {"hr", "si", 2.5, 1, 1.5},
      {"hu", "gr", 2.5, 1, 6.0},  {"gr", "cy", 2.5, 1, 5.0},
      {"cy", "il", 2.5, 1, 2.5},  {"dk", "se", 10, 1, 2.5},
      {"dk", "no", 2.5, 1, 3.0},  {"se", "no", 2.5, 1, 2.5},
      {"se", "pl", 2.5, 1, 4.5},  {"es", "pt", 2.5, 1, 3.0},
      {"pt", "uk", 2.5, 1, 8.0},  {"nl", "uk", 2.5, 1, 3.0},
      {"de", "il", 2.5, 1, 14.0},
  };
  return build_from_specs(nodes, edges);
}

Topology make_esnet() {
  // ESNet reconstruction: 68 sites, national-lab style network -- a core
  // ring of hubs with lab spurs. Deterministic.
  return detail::make_geo_network({.n_nodes = 68,
                                   .n_hubs = 14,
                                   .avg_spur_degree = 1,
                                   .extra_core_chords = 8,
                                   .capacity_core_gbps = 100,
                                   .capacity_spur_gbps = 10,
                                   .seed = 0xE5E5,
                                   .name_prefix = "esnet"});
}

Topology make_cogentco() {
  // Cogent reconstruction: 197 PoPs, dense commercial mesh in the core.
  return detail::make_geo_network({.n_nodes = 197,
                                   .n_hubs = 40,
                                   .avg_spur_degree = 2,
                                   .extra_core_chords = 30,
                                   .capacity_core_gbps = 100,
                                   .capacity_spur_gbps = 10,
                                   .seed = 0xC06E,
                                   .name_prefix = "cogent"});
}

std::vector<ZooEntry> zoo_catalog() {
  return {
      {"Abilene", &make_abilene, 11},
      {"GEANT", &make_geant, 23},
      {"ESNet", &make_esnet, 68},
      {"Cogentco", &make_cogentco, 197},
  };
}

}  // namespace dsdn::topo
