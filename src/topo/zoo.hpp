#pragma once

// Reconstructions of the external topologies used in Fig 15, at the node
// counts the paper quotes from the Internet TopologyZoo [30]:
//
//   Abilene (11)  -- exact historical edge list
//   GEANT   (23)  -- the 2004 pan-European research network, close
//                    reconstruction of its published edges
//   ESNet   (68)  -- procedural reconstruction at the published scale
//   Cogentco(197) -- procedural reconstruction at the published scale
//
// The procedural reconstructions are deterministic (fixed internal seed)
// and match node count, approximate average degree, and geographic-style
// delay structure; Fig 15 depends on graph size/diameter, not exact edges
// (see DESIGN.md, substitutions).

#include "topo/topology.hpp"

namespace dsdn::topo {

Topology make_abilene();
Topology make_geant();
Topology make_esnet();
Topology make_cogentco();

struct ZooEntry {
  const char* name;
  Topology (*factory)();
  std::size_t expected_nodes;
};

// The Fig 15 external topologies, smallest first.
std::vector<ZooEntry> zoo_catalog();

}  // namespace dsdn::topo
