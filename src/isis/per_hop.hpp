#pragma once

// Destination-based per-hop forwarding: the legacy IGP forwarding model
// that dSDN's strict source routing replaces (§3.1).
//
// With per-hop forwarding, every router independently maps destination ->
// next hop from its *own* view of the topology. While views diverge
// mid-convergence, packets can ping-pong between routers whose tables
// disagree (micro-loops) or hit dead ends -- "loops and dead-ends until
// all routers converge", as the paper puts it. Source routing avoids the
// whole failure class: the headend alone fixes the path, so the worst a
// stale route can do is arrive at a dead link (where FRR or a drop ends
// it) -- it can never loop.
//
// This module exists to make that contrast measurable (see
// bench_ablation_consensus and tests/test_consensus.cpp).

#include <vector>

#include "topo/topology.hpp"

namespace dsdn::isis {

// Per-destination next-hop link table for `self`, computed from `view`
// (which may be stale relative to ground truth). kInvalidLink where the
// destination is unreachable in the view.
struct NextHopTable {
  topo::NodeId self = topo::kInvalidNode;
  std::vector<topo::LinkId> next_hop;  // indexed by destination NodeId
};

NextHopTable compute_next_hops(const topo::Topology& view,
                               topo::NodeId self);

enum class PerHopOutcome {
  kDelivered,
  kLoop,      // revisited a router: a forwarding micro-loop
  kDeadEnd,   // a router had no next hop for the destination
  kLinkDown,  // next hop pointed at a dead link in ground truth
};

const char* per_hop_outcome_name(PerHopOutcome o);

struct PerHopResult {
  PerHopOutcome outcome = PerHopOutcome::kDeadEnd;
  std::size_t hops = 0;
  std::vector<topo::NodeId> trace;
};

// Walks a packet from src to dst across ground truth, consulting each
// visited router's own (possibly stale) table.
PerHopResult forward_per_hop(const topo::Topology& ground_truth,
                             const std::vector<NextHopTable>& tables,
                             topo::NodeId src, topo::NodeId dst);

}  // namespace dsdn::isis
