#include "isis/per_hop.hpp"

#include <stdexcept>
#include <unordered_set>

#include "te/dijkstra.hpp"

namespace dsdn::isis {

NextHopTable compute_next_hops(const topo::Topology& view,
                               topo::NodeId self) {
  NextHopTable table;
  table.self = self;
  table.next_hop.assign(view.num_nodes(), topo::kInvalidLink);
  const auto tree = te::shortest_path_tree(view, self);
  for (topo::NodeId dst = 0; dst < view.num_nodes(); ++dst) {
    if (dst == self || tree[dst].empty()) continue;
    table.next_hop[dst] = tree[dst].links.front();
  }
  return table;
}

const char* per_hop_outcome_name(PerHopOutcome o) {
  switch (o) {
    case PerHopOutcome::kDelivered: return "delivered";
    case PerHopOutcome::kLoop: return "loop";
    case PerHopOutcome::kDeadEnd: return "dead-end";
    case PerHopOutcome::kLinkDown: return "link-down";
  }
  return "?";
}

PerHopResult forward_per_hop(const topo::Topology& ground_truth,
                             const std::vector<NextHopTable>& tables,
                             topo::NodeId src, topo::NodeId dst) {
  if (tables.size() != ground_truth.num_nodes())
    throw std::invalid_argument("forward_per_hop: table count mismatch");
  PerHopResult r;
  std::unordered_set<topo::NodeId> visited;
  topo::NodeId at = src;
  r.trace.push_back(at);
  visited.insert(at);
  while (at != dst) {
    const topo::LinkId next = tables[at].next_hop[dst];
    if (next == topo::kInvalidLink) {
      r.outcome = PerHopOutcome::kDeadEnd;
      return r;
    }
    const topo::Link& link = ground_truth.link(next);
    if (!link.up) {
      r.outcome = PerHopOutcome::kLinkDown;
      return r;
    }
    at = link.dst;
    ++r.hops;
    r.trace.push_back(at);
    if (!visited.insert(at).second) {
      r.outcome = PerHopOutcome::kLoop;
      return r;
    }
  }
  r.outcome = PerHopOutcome::kDelivered;
  return r;
}

}  // namespace dsdn::isis
