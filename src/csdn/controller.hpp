#pragma once

// Centralized SDN controller model: the logically-centralized TE
// authority of Fig 2, reduced to what the evaluation needs -- the same TE
// algorithm as dSDN (by design, §5: "since cSDN and dSDN run the same TE
// algorithm, their routes after convergence are identical"), plus the
// cSDN-specific *timing*: CPN propagation, central compute on the
// datacenter server, and two-phase distributed programming.

#include "csdn/cpn.hpp"
#include "csdn/programming.hpp"
#include "te/solver.hpp"

namespace dsdn::csdn {

struct CsdnEventTiming {
  double t_learned = 0.0;    // event + Tprop
  double t_computed = 0.0;   // + Tcomp
  // Absolute switch time per demand index (only entries for demands whose
  // routing changed; untouched demands keep their old entry).
  std::vector<std::pair<std::size_t, double>> demand_switch;
  double t_converged = 0.0;  // max over switches (or t_computed if none)
};

class CsdnController {
 public:
  CsdnController(const topo::Topology* topo,
                 const metrics::CsdnCalibration& calib,
                 te::SolverOptions solver_options, std::uint64_t seed);

  // Central solve on the current (ground-truth) topology state.
  te::Solution solve(const traffic::TrafficMatrix& tm,
                     te::SolveStats* stats = nullptr) const;

  // Timing of a reconvergence: the event happened at `t0`; `changed`
  // marks demands whose paths differ between old and new solutions.
  // A partitioned network (CPN failure) never converges: t_converged is
  // +inf and no demand switches (fail static).
  CsdnEventTiming time_reconvergence(double t0,
                                     const te::Solution& new_solution,
                                     const std::vector<char>& changed);

  // Uses a measured Tcomp distribution (real solver runs at server
  // speed) instead of the calibrated lognormal.
  void set_measured_tcomp(metrics::EmpiricalDistribution d) {
    measured_tcomp_ = std::move(d);
  }

  ControlPlaneNetwork& cpn() { return cpn_; }
  const metrics::ProgrammingLatencyModel& programming_model() const {
    return programming_;
  }
  util::Rng& rng() { return rng_; }

 private:
  const topo::Topology* topo_;
  ControlPlaneNetwork cpn_;
  metrics::ProgrammingLatencyModel programming_;
  te::Solver solver_;
  metrics::EmpiricalDistribution measured_tcomp_;
  mutable util::Rng rng_;
};

// Marks which demands' installed paths differ between two solutions.
std::vector<char> changed_demands(const te::Solution& before,
                                  const te::Solution& after);

}  // namespace dsdn::csdn
