#pragma once

// Control Plane Network model (§2.2): the out-of-band network plus the
// hierarchy of collection services (edge controller, topology service,
// central controller) that a state change must traverse before the cSDN
// TE sees it. We model the end-to-end traversal with the calibrated Tprop
// sampler, and support partitioning a subset of routers from the
// controller -- the "fail static" failure modality of §2.3: a partitioned
// router keeps forwarding on its last-programmed state but can neither
// report events nor receive updates.

#include <unordered_set>

#include "metrics/calibration.hpp"
#include "topo/topology.hpp"

namespace dsdn::csdn {

class ControlPlaneNetwork {
 public:
  explicit ControlPlaneNetwork(const metrics::CsdnCalibration& calib)
      : calib_(calib) {}

  // End-to-end event propagation time, router -> central controller.
  double sample_tprop(util::Rng& rng) const {
    return metrics::sample_csdn_tprop(calib_, rng);
  }

  // CPN partition management (fail-static scenarios).
  void set_partitioned(topo::NodeId router, bool partitioned);
  bool is_partitioned(topo::NodeId router) const;
  bool can_reach_controller(topo::NodeId router) const {
    return !is_partitioned(router);
  }
  std::size_t num_partitioned() const { return partitioned_.size(); }

  const metrics::CsdnCalibration& calibration() const { return calib_; }

 private:
  metrics::CsdnCalibration calib_;
  std::unordered_set<topo::NodeId> partitioned_;
};

}  // namespace dsdn::csdn
