#include "csdn/cpn.hpp"

namespace dsdn::csdn {

void ControlPlaneNetwork::set_partitioned(topo::NodeId router,
                                          bool partitioned) {
  if (partitioned) {
    partitioned_.insert(router);
  } else {
    partitioned_.erase(router);
  }
}

bool ControlPlaneNetwork::is_partitioned(topo::NodeId router) const {
  return partitioned_.contains(router);
}

}  // namespace dsdn::csdn
