#include "csdn/programming.hpp"

#include <algorithm>

namespace dsdn::csdn {

PathProgrammingTime two_phase_program(
    const topo::Topology& topo, const te::Path& path,
    const metrics::ProgrammingLatencyModel& model, util::Rng& rng) {
  PathProgrammingTime t;
  const auto nodes = path.node_sequence(topo);
  // Transit routers: every node after the headend and before the egress.
  for (std::size_t i = 1; i + 1 < nodes.size(); ++i) {
    t.transit_complete_s =
        std::max(t.transit_complete_s, model.sample_transit(nodes[i], rng));
  }
  const topo::NodeId headend = nodes.empty() ? 0 : nodes.front();
  t.enabled_s = t.transit_complete_s + model.sample_encap(headend, rng);
  return t;
}

double demand_switch_time(const topo::Topology& topo,
                          const std::vector<te::WeightedPath>& paths,
                          const metrics::ProgrammingLatencyModel& model,
                          util::Rng& rng) {
  double t = 0.0;
  for (const te::WeightedPath& wp : paths) {
    t = std::max(t, two_phase_program(topo, wp.path, model, rng).enabled_s);
  }
  return t;
}

}  // namespace dsdn::csdn
