#include "csdn/controller.hpp"

#include <limits>

namespace dsdn::csdn {

namespace {

metrics::ProgrammingLatencyModel make_programming_model(
    const metrics::CsdnCalibration& calib, std::size_t n_routers,
    std::uint64_t seed) {
  util::Rng rng(util::splitmix64(seed ^ 0xCDCDCDCDULL));
  return metrics::ProgrammingLatencyModel(calib, n_routers, rng);
}

}  // namespace

CsdnController::CsdnController(const topo::Topology* topo,
                               const metrics::CsdnCalibration& calib,
                               te::SolverOptions solver_options,
                               std::uint64_t seed)
    : topo_(topo),
      cpn_(calib),
      programming_(make_programming_model(calib, topo->num_nodes(), seed)),
      solver_(solver_options),
      rng_(seed) {}

te::Solution CsdnController::solve(const traffic::TrafficMatrix& tm,
                                   te::SolveStats* stats) const {
  return solver_.solve(*topo_, tm, stats);
}

CsdnEventTiming CsdnController::time_reconvergence(
    double t0, const te::Solution& new_solution,
    const std::vector<char>& changed) {
  CsdnEventTiming timing;
  timing.t_learned = t0 + cpn_.sample_tprop(rng_);
  timing.t_computed =
      timing.t_learned +
      (measured_tcomp_.empty()
           ? metrics::sample_csdn_tcomp(cpn_.calibration(), rng_)
           : measured_tcomp_.sample(rng_));
  timing.t_converged = timing.t_computed;
  for (std::size_t i = 0; i < new_solution.allocations.size(); ++i) {
    if (i < changed.size() && !changed[i]) continue;
    const te::Allocation& a = new_solution.allocations[i];
    // A headend partitioned from the CPN fails static: its paths are
    // never reprogrammed.
    if (cpn_.is_partitioned(a.demand.src)) continue;
    const double switch_at =
        timing.t_computed +
        demand_switch_time(*topo_, a.paths, programming_, rng_);
    timing.demand_switch.emplace_back(i, switch_at);
    timing.t_converged = std::max(timing.t_converged, switch_at);
  }
  return timing;
}

std::vector<char> changed_demands(const te::Solution& before,
                                  const te::Solution& after) {
  std::vector<char> changed(after.allocations.size(), 1);
  if (before.allocations.size() != after.allocations.size()) return changed;
  for (std::size_t i = 0; i < after.allocations.size(); ++i) {
    const auto& a = before.allocations[i];
    const auto& b = after.allocations[i];
    bool same = a.paths.size() == b.paths.size() &&
                a.allocated_gbps == b.allocated_gbps;
    if (same) {
      for (std::size_t p = 0; p < a.paths.size(); ++p) {
        if (a.paths[p].path != b.paths[p].path ||
            a.paths[p].weight != b.paths[p].weight) {
          same = false;
          break;
        }
      }
    }
    changed[i] = same ? 0 : 1;
  }
  return changed;
}

}  // namespace dsdn::csdn
