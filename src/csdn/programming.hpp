#pragma once

// cSDN's two-phase make-before-break path programming (§4, Appendix B).
//
// For a path of n links: (a) its n-1 transit routers are programmed in
// parallel; (b) each acks back to the controller; (c) once all acks
// arrive, the controller enables the new path at the headend (encap
// entry). The path is gated by its slowest transit router; network-wide
// convergence is gated by the slowest path -- the tail-multiplication
// effect Fig 19 quantifies.

#include "metrics/calibration.hpp"
#include "te/types.hpp"

namespace dsdn::csdn {

struct PathProgrammingTime {
  double transit_complete_s = 0.0;  // phase (a)+(b): max over transit routers
  double enabled_s = 0.0;           // + phase (c): headend encap entry
};

// Samples the two-phase programming duration for one path (relative to
// when the controller issues it).
PathProgrammingTime two_phase_program(
    const topo::Topology& topo, const te::Path& path,
    const metrics::ProgrammingLatencyModel& model, util::Rng& rng);

// Samples the per-demand switch time: the max enable time over the
// demand's (possibly several) new paths.
double demand_switch_time(const topo::Topology& topo,
                          const std::vector<te::WeightedPath>& paths,
                          const metrics::ProgrammingLatencyModel& model,
                          util::Rng& rng);

}  // namespace dsdn::csdn
