#pragma once

// RSVP-TE baseline (§2.1, §5.1.2): capacity-aware routing without SDN, as
// in the B2 network. Each headend independently runs CSPF [48] over its
// local view of available capacity and signals the chosen path hop-by-hop
// with RSVP [6], reserving bandwidth at each router. A reservation that
// fails mid-path (someone else grabbed the capacity) triggers a
// crankback: release what was reserved, back off exponentially, retry.
//
// After a link cut, every headend with an affected LSP races to restore
// it simultaneously -- the "signaling stampede" that gives RSVP-TE its
// 45.5 s median and multi-minute tail convergence in the paper.

#include "metrics/calibration.hpp"
#include "metrics/distribution.hpp"
#include "sim/event_queue.hpp"
#include "te/dijkstra.hpp"
#include "traffic/matrix.hpp"

namespace dsdn::rsvp {

struct RsvpParams {
  metrics::RsvpCalibration calib;
  std::size_t max_retries = 24;
  std::uint64_t seed = 11;
};

struct RsvpEventResult {
  // Wall-clock (simulated) time from the failure to the last affected LSP
  // being restored (or giving up).
  double convergence_time_s = 0.0;
  // Restore time of each affected LSP.
  metrics::EmpiricalDistribution lsp_restore_times;
  std::size_t affected_lsps = 0;
  std::size_t restored_lsps = 0;
  std::size_t crankbacks = 0;
  std::size_t retries = 0;
};

// A network of RSVP-TE LSPs: one LSP per demand.
class RsvpTeNetwork {
 public:
  RsvpTeNetwork(const topo::Topology* topo, traffic::TrafficMatrix tm,
                const RsvpParams& params);

  // Sequentially establishes all LSPs on the healthy network (no
  // contention: initial setup is paced in practice). Returns the number
  // of LSPs that found a reservable path.
  std::size_t establish_all();

  // Fails the fiber (both directions), runs the restoration stampede to
  // quiescence, and reports. The fiber is left down afterwards; call
  // repair_fiber() to restore it.
  RsvpEventResult fail_fiber(topo::LinkId fiber);
  void repair_fiber(topo::LinkId fiber);

  // Reserved bandwidth per directed link.
  const std::vector<double>& reserved() const { return reserved_; }
  std::size_t established_count() const;

 private:
  struct Lsp {
    te::Path path;          // empty = not established
    double rate_gbps = 0.0;
    std::size_t retries = 0;
  };

  std::optional<te::Path> cspf(topo::NodeId src, topo::NodeId dst,
                               double rate) const;
  void release(Lsp& lsp);
  // Schedules a signaling attempt for LSP i at `when`; on crankback,
  // reschedules with backoff. Updates `result`.
  void attempt_signal(sim::EventQueue& q, std::size_t i, double fail_time,
                      RsvpEventResult& result);

  const topo::Topology* topo_;
  traffic::TrafficMatrix tm_;
  RsvpParams params_;
  mutable topo::Topology scratch_;  // local mutable view of link state
  std::vector<Lsp> lsps_;
  std::vector<double> reserved_;
  // Per-router signaling queue: the time until which each router's
  // control plane is busy processing earlier RSVP messages.
  std::vector<double> signal_busy_until_;
  util::Rng rng_;
};

}  // namespace dsdn::rsvp
