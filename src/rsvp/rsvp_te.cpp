#include "rsvp/rsvp_te.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace dsdn::rsvp {

RsvpTeNetwork::RsvpTeNetwork(const topo::Topology* topo,
                             traffic::TrafficMatrix tm,
                             const RsvpParams& params)
    : topo_(topo),
      tm_(std::move(tm)),
      params_(params),
      scratch_(*topo),
      reserved_(topo->num_links(), 0.0),
      signal_busy_until_(topo->num_nodes(), 0.0),
      rng_(params.seed) {
  lsps_.resize(tm_.size());
  for (std::size_t i = 0; i < tm_.size(); ++i) {
    lsps_[i].rate_gbps = tm_.demands()[i].rate_gbps;
  }
}

std::optional<te::Path> RsvpTeNetwork::cspf(topo::NodeId src,
                                            topo::NodeId dst,
                                            double rate) const {
  std::vector<double> residual(scratch_.num_links());
  for (std::size_t l = 0; l < scratch_.num_links(); ++l) {
    residual[l] = scratch_.link(static_cast<topo::LinkId>(l)).capacity_gbps -
                  reserved_[l];
  }
  te::SpConstraints c;
  c.residual_gbps = &residual;
  c.min_residual = rate;
  return te::shortest_path(scratch_, src, dst, c);
}

void RsvpTeNetwork::release(Lsp& lsp) {
  for (topo::LinkId l : lsp.path.links) reserved_[l] -= lsp.rate_gbps;
  lsp.path = {};
}

std::size_t RsvpTeNetwork::establish_all() {
  std::size_t established = 0;
  for (std::size_t i = 0; i < lsps_.size(); ++i) {
    const auto& d = tm_.demands()[i];
    auto p = cspf(d.src, d.dst, lsps_[i].rate_gbps);
    if (!p) continue;
    for (topo::LinkId l : p->links) reserved_[l] += lsps_[i].rate_gbps;
    lsps_[i].path = std::move(*p);
    ++established;
  }
  return established;
}

std::size_t RsvpTeNetwork::established_count() const {
  return static_cast<std::size_t>(
      std::count_if(lsps_.begin(), lsps_.end(),
                    [](const Lsp& l) { return !l.path.empty(); }));
}

void RsvpTeNetwork::attempt_signal(sim::EventQueue& q, std::size_t i,
                                   double fail_time,
                                   RsvpEventResult& result) {
  Lsp& lsp = lsps_[i];
  const auto& d = tm_.demands()[i];

  auto backoff_and_retry = [this, &q, i, fail_time, &result](Lsp& l) {
    ++result.crankbacks;
    if (l.retries >= params_.max_retries) return;  // give up
    const double backoff =
        std::min(params_.calib.backoff_max_s,
                 params_.calib.backoff_base_s *
                     std::pow(params_.calib.backoff_multiplier,
                              static_cast<double>(l.retries))) *
        rng_.uniform(0.5, 1.5);
    ++l.retries;
    ++result.retries;
    q.schedule_in(backoff, [this, &q, i, fail_time, &result] {
      attempt_signal(q, i, fail_time, result);
    });
  };

  // Headend CSPF over the current (shared, serialized-at-event-time)
  // residual view.
  auto p = cspf(d.src, d.dst, lsp.rate_gbps);
  if (!p) {
    backoff_and_retry(lsp);
    return;
  }

  // Signal hop-by-hop. Reservations land at each hop's arrival time; a
  // competing LSP can snatch the capacity in between -- that is the
  // stampede. We walk hops through the event queue.
  struct SignalState {
    te::Path path;
    std::size_t next_hop = 0;
  };
  auto state = std::make_shared<SignalState>();
  state->path = std::move(*p);

  // Recursive hop processor.
  auto process_hop = std::make_shared<std::function<void()>>();
  *process_hop = [this, &q, i, fail_time, &result, state, process_hop,
                  backoff_and_retry]() mutable {
    Lsp& l = lsps_[i];
    if (state->next_hop >= state->path.links.size()) {
      // RESV complete: LSP restored.
      l.path = state->path;
      ++result.restored_lsps;
      result.lsp_restore_times.add(q.now() - fail_time);
      result.convergence_time_s =
          std::max(result.convergence_time_s, q.now() - fail_time);
      return;
    }
    const topo::LinkId lid = state->path.links[state->next_hop];
    const topo::Link& link = scratch_.link(lid);
    const double residual = link.capacity_gbps - reserved_[lid];
    if (!link.up || residual < l.rate_gbps) {
      // Crankback: release the hops this attempt already reserved.
      for (std::size_t h = 0; h < state->next_hop; ++h)
        reserved_[state->path.links[h]] -= l.rate_gbps;
      backoff_and_retry(l);
      return;
    }
    reserved_[lid] += l.rate_gbps;
    ++state->next_hop;
    // The PATH message reaches the next router and queues behind every
    // earlier signaling message there: per-router serial processing is
    // what turns simultaneous restorations into a stampede.
    const double arrive =
        q.now() + link.delay_s +
        rng_.lognormal_median(params_.calib.hop_setup_median_s,
                              params_.calib.hop_setup_sigma);
    const double start = std::max(arrive, signal_busy_until_[link.dst]);
    const double service =
        rng_.lognormal_median(params_.calib.signal_service_median_s,
                              params_.calib.signal_service_sigma);
    signal_busy_until_[link.dst] = start + service;
    q.schedule(start + service, [process_hop] { (*process_hop)(); });
  };
  (*process_hop)();
}

RsvpEventResult RsvpTeNetwork::fail_fiber(topo::LinkId fiber) {
  RsvpEventResult result;
  scratch_.set_duplex_up(fiber, false);
  // Each event runs on a fresh clock; signaling queues start idle.
  std::fill(signal_busy_until_.begin(), signal_busy_until_.end(), 0.0);
  const topo::LinkId rev = scratch_.link(fiber).reverse;

  // Which LSPs crossed the fiber?
  std::vector<std::size_t> affected;
  for (std::size_t i = 0; i < lsps_.size(); ++i) {
    const auto& links = lsps_[i].path.links;
    if (std::find(links.begin(), links.end(), fiber) != links.end() ||
        (rev != topo::kInvalidLink &&
         std::find(links.begin(), links.end(), rev) != links.end())) {
      affected.push_back(i);
    }
  }
  result.affected_lsps = affected.size();
  if (affected.empty()) return result;

  sim::EventQueue q;
  for (std::size_t i : affected) {
    Lsp& lsp = lsps_[i];
    // Failure detection: PathErr propagates from the break back to the
    // headend along the old path.
    double detect = 0.0;
    for (topo::LinkId l : lsp.path.links) {
      detect += scratch_.link(l).delay_s;
      if (l == fiber || l == rev) break;
    }
    release(lsp);
    lsp.retries = 0;
    const double start =
        detect + rng_.lognormal_median(params_.calib.cspf_median_s,
                                       params_.calib.cspf_sigma);
    q.schedule(start, [this, &q, i, &result] {
      attempt_signal(q, i, /*fail_time=*/0.0, result);
    });
  }
  q.run();
  return result;
}

void RsvpTeNetwork::repair_fiber(topo::LinkId fiber) {
  scratch_.set_duplex_up(fiber, true);
}

}  // namespace dsdn::rsvp
