# Empty compiler generated dependencies file for test_rsvp.
# This may be replaced when dependencies are built.
