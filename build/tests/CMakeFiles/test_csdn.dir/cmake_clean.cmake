file(REMOVE_RECURSE
  "CMakeFiles/test_csdn.dir/test_csdn.cpp.o"
  "CMakeFiles/test_csdn.dir/test_csdn.cpp.o.d"
  "test_csdn"
  "test_csdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
