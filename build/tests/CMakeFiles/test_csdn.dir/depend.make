# Empty dependencies file for test_csdn.
# This may be replaced when dependencies are built.
