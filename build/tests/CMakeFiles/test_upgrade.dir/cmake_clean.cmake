file(REMOVE_RECURSE
  "CMakeFiles/test_upgrade.dir/test_upgrade.cpp.o"
  "CMakeFiles/test_upgrade.dir/test_upgrade.cpp.o.d"
  "test_upgrade"
  "test_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
