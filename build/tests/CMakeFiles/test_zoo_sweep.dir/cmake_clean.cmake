file(REMOVE_RECURSE
  "CMakeFiles/test_zoo_sweep.dir/test_zoo_sweep.cpp.o"
  "CMakeFiles/test_zoo_sweep.dir/test_zoo_sweep.cpp.o.d"
  "test_zoo_sweep"
  "test_zoo_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zoo_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
