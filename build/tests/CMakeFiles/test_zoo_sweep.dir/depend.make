# Empty dependencies file for test_zoo_sweep.
# This may be replaced when dependencies are built.
