file(REMOVE_RECURSE
  "CMakeFiles/test_emulation.dir/test_emulation.cpp.o"
  "CMakeFiles/test_emulation.dir/test_emulation.cpp.o.d"
  "test_emulation"
  "test_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
