file(REMOVE_RECURSE
  "CMakeFiles/test_sublabel.dir/test_sublabel.cpp.o"
  "CMakeFiles/test_sublabel.dir/test_sublabel.cpp.o.d"
  "test_sublabel"
  "test_sublabel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sublabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
