# Empty compiler generated dependencies file for test_sublabel.
# This may be replaced when dependencies are built.
