# Empty dependencies file for bench_ablation_nsu_overhead.
# This may be replaced when dependencies are built.
