# Empty compiler generated dependencies file for bench_fig09_b2_convergence.
# This may be replaced when dependencies are built.
