# Empty compiler generated dependencies file for bench_fig08_convergence_components.
# This may be replaced when dependencies are built.
