file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_convergence_components.dir/bench_fig08_convergence_components.cpp.o"
  "CMakeFiles/bench_fig08_convergence_components.dir/bench_fig08_convergence_components.cpp.o.d"
  "bench_fig08_convergence_components"
  "bench_fig08_convergence_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_convergence_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
