file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_programming_tail.dir/bench_fig19_programming_tail.cpp.o"
  "CMakeFiles/bench_fig19_programming_tail.dir/bench_fig19_programming_tail.cpp.o.d"
  "bench_fig19_programming_tail"
  "bench_fig19_programming_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_programming_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
