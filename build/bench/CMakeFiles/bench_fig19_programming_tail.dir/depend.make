# Empty dependencies file for bench_fig19_programming_tail.
# This may be replaced when dependencies are built.
