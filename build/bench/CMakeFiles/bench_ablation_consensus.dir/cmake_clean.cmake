file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_consensus.dir/bench_ablation_consensus.cpp.o"
  "CMakeFiles/bench_ablation_consensus.dir/bench_ablation_consensus.cpp.o.d"
  "bench_ablation_consensus"
  "bench_ablation_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
