# Empty dependencies file for bench_ablation_consensus.
# This may be replaced when dependencies are built.
