file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_underlay.dir/bench_ablation_underlay.cpp.o"
  "CMakeFiles/bench_ablation_underlay.dir/bench_ablation_underlay.cpp.o.d"
  "bench_ablation_underlay"
  "bench_ablation_underlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_underlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
