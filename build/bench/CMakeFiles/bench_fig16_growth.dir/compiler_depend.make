# Empty compiler generated dependencies file for bench_fig16_growth.
# This may be replaced when dependencies are built.
