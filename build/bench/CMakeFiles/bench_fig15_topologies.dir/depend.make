# Empty dependencies file for bench_fig15_topologies.
# This may be replaced when dependencies are built.
