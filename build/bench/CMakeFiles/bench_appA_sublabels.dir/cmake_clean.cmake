file(REMOVE_RECURSE
  "CMakeFiles/bench_appA_sublabels.dir/bench_appA_sublabels.cpp.o"
  "CMakeFiles/bench_appA_sublabels.dir/bench_appA_sublabels.cpp.o.d"
  "bench_appA_sublabels"
  "bench_appA_sublabels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appA_sublabels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
