# Empty compiler generated dependencies file for bench_appA_sublabels.
# This may be replaced when dependencies are built.
