file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bad_seconds.dir/bench_fig10_bad_seconds.cpp.o"
  "CMakeFiles/bench_fig10_bad_seconds.dir/bench_fig10_bad_seconds.cpp.o.d"
  "bench_fig10_bad_seconds"
  "bench_fig10_bad_seconds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bad_seconds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
