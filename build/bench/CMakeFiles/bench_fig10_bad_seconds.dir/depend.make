# Empty dependencies file for bench_fig10_bad_seconds.
# This may be replaced when dependencies are built.
