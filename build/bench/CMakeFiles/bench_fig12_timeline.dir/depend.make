# Empty dependencies file for bench_fig12_timeline.
# This may be replaced when dependencies are built.
