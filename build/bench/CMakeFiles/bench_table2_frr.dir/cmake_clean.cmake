file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_frr.dir/bench_table2_frr.cpp.o"
  "CMakeFiles/bench_table2_frr.dir/bench_table2_frr.cpp.o.d"
  "bench_table2_frr"
  "bench_table2_frr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_frr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
