# Empty dependencies file for bench_fig20_bypass.
# This may be replaced when dependencies are built.
