file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_bypass.dir/bench_fig20_bypass.cpp.o"
  "CMakeFiles/bench_fig20_bypass.dir/bench_fig20_bypass.cpp.o.d"
  "bench_fig20_bypass"
  "bench_fig20_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
