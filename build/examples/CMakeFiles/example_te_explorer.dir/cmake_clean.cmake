file(REMOVE_RECURSE
  "CMakeFiles/example_te_explorer.dir/te_explorer.cpp.o"
  "CMakeFiles/example_te_explorer.dir/te_explorer.cpp.o.d"
  "example_te_explorer"
  "example_te_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_te_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
