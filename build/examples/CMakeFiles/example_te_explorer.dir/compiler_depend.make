# Empty compiler generated dependencies file for example_te_explorer.
# This may be replaced when dependencies are built.
