# Empty dependencies file for example_wan_failover.
# This may be replaced when dependencies are built.
