file(REMOVE_RECURSE
  "CMakeFiles/example_wan_failover.dir/wan_failover.cpp.o"
  "CMakeFiles/example_wan_failover.dir/wan_failover.cpp.o.d"
  "example_wan_failover"
  "example_wan_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wan_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
