# Empty dependencies file for example_sublabel_routing.
# This may be replaced when dependencies are built.
