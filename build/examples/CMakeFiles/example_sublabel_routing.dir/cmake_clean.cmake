file(REMOVE_RECURSE
  "CMakeFiles/example_sublabel_routing.dir/sublabel_routing.cpp.o"
  "CMakeFiles/example_sublabel_routing.dir/sublabel_routing.cpp.o.d"
  "example_sublabel_routing"
  "example_sublabel_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sublabel_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
