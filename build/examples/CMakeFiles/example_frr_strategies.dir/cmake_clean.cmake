file(REMOVE_RECURSE
  "CMakeFiles/example_frr_strategies.dir/frr_strategies.cpp.o"
  "CMakeFiles/example_frr_strategies.dir/frr_strategies.cpp.o.d"
  "example_frr_strategies"
  "example_frr_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_frr_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
