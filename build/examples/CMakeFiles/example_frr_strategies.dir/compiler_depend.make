# Empty compiler generated dependencies file for example_frr_strategies.
# This may be replaced when dependencies are built.
