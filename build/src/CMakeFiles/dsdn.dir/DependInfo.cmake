
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bus.cpp" "src/CMakeFiles/dsdn.dir/core/bus.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/bus.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/CMakeFiles/dsdn.dir/core/controller.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/controller.cpp.o.d"
  "/root/repo/src/core/introspection.cpp" "src/CMakeFiles/dsdn.dir/core/introspection.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/introspection.cpp.o.d"
  "/root/repo/src/core/local_state.cpp" "src/CMakeFiles/dsdn.dir/core/local_state.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/local_state.cpp.o.d"
  "/root/repo/src/core/nsu.cpp" "src/CMakeFiles/dsdn.dir/core/nsu.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/nsu.cpp.o.d"
  "/root/repo/src/core/pathing.cpp" "src/CMakeFiles/dsdn.dir/core/pathing.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/pathing.cpp.o.d"
  "/root/repo/src/core/programmer.cpp" "src/CMakeFiles/dsdn.dir/core/programmer.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/programmer.cpp.o.d"
  "/root/repo/src/core/state_db.cpp" "src/CMakeFiles/dsdn.dir/core/state_db.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/state_db.cpp.o.d"
  "/root/repo/src/core/upgrade.cpp" "src/CMakeFiles/dsdn.dir/core/upgrade.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/upgrade.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/CMakeFiles/dsdn.dir/core/wire.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/core/wire.cpp.o.d"
  "/root/repo/src/csdn/controller.cpp" "src/CMakeFiles/dsdn.dir/csdn/controller.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/csdn/controller.cpp.o.d"
  "/root/repo/src/csdn/cpn.cpp" "src/CMakeFiles/dsdn.dir/csdn/cpn.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/csdn/cpn.cpp.o.d"
  "/root/repo/src/csdn/programming.cpp" "src/CMakeFiles/dsdn.dir/csdn/programming.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/csdn/programming.cpp.o.d"
  "/root/repo/src/dataplane/fib.cpp" "src/CMakeFiles/dsdn.dir/dataplane/fib.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/dataplane/fib.cpp.o.d"
  "/root/repo/src/dataplane/forwarder.cpp" "src/CMakeFiles/dsdn.dir/dataplane/forwarder.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/dataplane/forwarder.cpp.o.d"
  "/root/repo/src/dataplane/frr.cpp" "src/CMakeFiles/dsdn.dir/dataplane/frr.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/dataplane/frr.cpp.o.d"
  "/root/repo/src/dataplane/label.cpp" "src/CMakeFiles/dsdn.dir/dataplane/label.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/dataplane/label.cpp.o.d"
  "/root/repo/src/dataplane/sublabel.cpp" "src/CMakeFiles/dsdn.dir/dataplane/sublabel.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/dataplane/sublabel.cpp.o.d"
  "/root/repo/src/isis/per_hop.cpp" "src/CMakeFiles/dsdn.dir/isis/per_hop.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/isis/per_hop.cpp.o.d"
  "/root/repo/src/metrics/calibration.cpp" "src/CMakeFiles/dsdn.dir/metrics/calibration.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/metrics/calibration.cpp.o.d"
  "/root/repo/src/metrics/distribution.cpp" "src/CMakeFiles/dsdn.dir/metrics/distribution.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/metrics/distribution.cpp.o.d"
  "/root/repo/src/metrics/slo.cpp" "src/CMakeFiles/dsdn.dir/metrics/slo.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/metrics/slo.cpp.o.d"
  "/root/repo/src/rsvp/rsvp_te.cpp" "src/CMakeFiles/dsdn.dir/rsvp/rsvp_te.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/rsvp/rsvp_te.cpp.o.d"
  "/root/repo/src/shard/sharded_wan.cpp" "src/CMakeFiles/dsdn.dir/shard/sharded_wan.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/shard/sharded_wan.cpp.o.d"
  "/root/repo/src/sim/convergence.cpp" "src/CMakeFiles/dsdn.dir/sim/convergence.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/sim/convergence.cpp.o.d"
  "/root/repo/src/sim/emulation.cpp" "src/CMakeFiles/dsdn.dir/sim/emulation.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/sim/emulation.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/dsdn.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/failure.cpp" "src/CMakeFiles/dsdn.dir/sim/failure.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/sim/failure.cpp.o.d"
  "/root/repo/src/sim/flow_eval.cpp" "src/CMakeFiles/dsdn.dir/sim/flow_eval.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/sim/flow_eval.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/CMakeFiles/dsdn.dir/sim/transient.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/sim/transient.cpp.o.d"
  "/root/repo/src/te/dijkstra.cpp" "src/CMakeFiles/dsdn.dir/te/dijkstra.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/te/dijkstra.cpp.o.d"
  "/root/repo/src/te/ksp.cpp" "src/CMakeFiles/dsdn.dir/te/ksp.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/te/ksp.cpp.o.d"
  "/root/repo/src/te/parallel_solver.cpp" "src/CMakeFiles/dsdn.dir/te/parallel_solver.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/te/parallel_solver.cpp.o.d"
  "/root/repo/src/te/path_cache.cpp" "src/CMakeFiles/dsdn.dir/te/path_cache.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/te/path_cache.cpp.o.d"
  "/root/repo/src/te/solver.cpp" "src/CMakeFiles/dsdn.dir/te/solver.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/te/solver.cpp.o.d"
  "/root/repo/src/topo/builder.cpp" "src/CMakeFiles/dsdn.dir/topo/builder.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/topo/builder.cpp.o.d"
  "/root/repo/src/topo/prefix.cpp" "src/CMakeFiles/dsdn.dir/topo/prefix.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/topo/prefix.cpp.o.d"
  "/root/repo/src/topo/synthetic.cpp" "src/CMakeFiles/dsdn.dir/topo/synthetic.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/topo/synthetic.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/dsdn.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/topo/topology.cpp.o.d"
  "/root/repo/src/topo/zoo.cpp" "src/CMakeFiles/dsdn.dir/topo/zoo.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/topo/zoo.cpp.o.d"
  "/root/repo/src/traffic/estimator.cpp" "src/CMakeFiles/dsdn.dir/traffic/estimator.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/traffic/estimator.cpp.o.d"
  "/root/repo/src/traffic/flow_group.cpp" "src/CMakeFiles/dsdn.dir/traffic/flow_group.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/traffic/flow_group.cpp.o.d"
  "/root/repo/src/traffic/gravity.cpp" "src/CMakeFiles/dsdn.dir/traffic/gravity.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/traffic/gravity.cpp.o.d"
  "/root/repo/src/traffic/matrix.cpp" "src/CMakeFiles/dsdn.dir/traffic/matrix.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/traffic/matrix.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/dsdn.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/util/format.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/dsdn.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/dsdn.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
