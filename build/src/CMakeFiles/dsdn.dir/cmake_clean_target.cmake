file(REMOVE_RECURSE
  "libdsdn.a"
)
