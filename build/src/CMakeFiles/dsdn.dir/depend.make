# Empty dependencies file for dsdn.
# This may be replaced when dependencies are built.
