// MPLS sublabel routing (Appendix A): strict source routing on a network
// whose paths exceed the hardware's 12-label push limit, by packing two
// hops per 20-bit MPLS label -- with no coordination beyond the standard
// link-state exchange.
//
//   $ ./example_sublabel_routing

#include <cstdio>

#include "dataplane/sublabel.hpp"
#include "te/dijkstra.hpp"
#include "topo/synthetic.hpp"

using namespace dsdn;

int main() {
  // A 22-node chain of metro rings: the long way across is 21 hops,
  // far beyond the 12-label limit of plain per-hop label stacks.
  topo::Topology topo = topo::make_line(22);

  // Operator-assigned sublabels: a greedy fiber edge coloring makes the
  // labels of any router's in/out links mutually unique (locally unique,
  // A.2), so every 20-bit pair is unambiguous at the router that acts
  // on it.
  const auto assignment = dataplane::assign_sublabels(topo);
  std::printf("network: %zu nodes, %zu fibers, max degree %zu\n",
              topo.num_nodes(), topo.num_links() / 2, topo.max_degree());
  std::printf("sublabels in use: %zu (of %u available)\n\n",
              assignment.num_sublabels_used(), dataplane::kMaxSublabel);

  // Each router derives its static MPLS table (Table 1) purely from its
  // own links and its neighbors' advertised sublabels.
  std::vector<dataplane::SublabelFib> fibs;
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    fibs.push_back(dataplane::SublabelFib::build(topo, n, assignment));
  }
  std::printf("per-router static table sizes: first=%zu, middle=%zu "
              "(bounded by ~2k^2, independent of network size)\n\n",
              fibs.front().size(), fibs[13].size());

  // The long route.
  const auto path = te::shortest_path(topo, 0, 21);
  if (!path) {
    std::printf("no path!?\n");
    return 1;
  }
  std::printf("route 0 -> 21: %zu hops\n", path->hops());
  std::printf("  plain per-link encoding would need %zu labels "
              "(hardware limit: %zu)\n",
              path->hops(), dataplane::kMaxLabelDepth);

  const auto stack = dataplane::encode_sublabel_route(*path, assignment);
  std::printf("  sublabel encoding: %zu labels %s\n\n", stack.depth(),
              stack.to_string().c_str());

  // Walk the packet through the sublabel data plane.
  const auto result = dataplane::forward_sublabel(topo, fibs, 0, stack);
  std::printf("forwarding: %s at node %u after %zu hops\n",
              result.delivered ? "delivered" : "DROPPED", result.final_node,
              result.hops);

  // Show the per-hop label decisions for the first few hops.
  std::printf("\nfirst hops of the label walk:\n");
  dataplane::LabelStack s = stack;
  topo::NodeId at = 0;
  for (int hop = 0; hop < 5 && !s.empty(); ++hop) {
    const auto [s1, s2] = dataplane::unpack_sublabels(s.top());
    const auto entry = fibs[at].lookup(s.top());
    const char* action = !entry ? "miss"
                         : entry->action == dataplane::SublabelAction::kPopForward
                             ? "pop+forward"
                         : entry->action == dataplane::SublabelAction::kKeepForward
                             ? "keep+forward"
                             : "pop+deliver";
    std::printf("  at n%-3u top=(%u,%u) -> %s\n", at, s1, s2, action);
    if (!entry) break;
    if (entry->action != dataplane::SublabelAction::kKeepForward) s.pop();
    if (entry->out_link == topo::kInvalidLink) break;
    at = topo.link(entry->out_link).dst;
  }
  return result.delivered ? 0 : 1;
}
