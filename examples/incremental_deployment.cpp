// Incremental deployment (§3.2): dSDN's first deployment step keeps cSDN
// as the primary controller and runs dSDN as the backup underlay (in
// place of IS-IS). This example shows why that matters: when the cSDN
// control plane is partitioned from the routers (a CPN failure, §2.3),
// cSDN "fails static" -- its last-programmed routes go stale -- while the
// dSDN underlay, which fate-shares with the data plane, keeps
// reconverging. Routers fall back to dSDN-programmed paths and traffic
// keeps flowing.
//
//   $ ./example_incremental_deployment

#include <cstdio>

#include "csdn/controller.hpp"
#include "sim/emulation.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

using namespace dsdn;

namespace {

// Primary/backup layered data plane: cSDN-programmed tables are used
// while the cSDN control plane is healthy; dSDN's on-box tables take
// over when it is not.
class LayeredProvider final : public dataplane::DataplaneProvider {
 public:
  LayeredProvider(const dataplane::VectorDataplanes* primary,
                  const sim::DsdnEmulation* backup)
      : primary_(primary), backup_(backup) {}

  void set_csdn_healthy(bool healthy) { csdn_healthy_ = healthy; }

  const dataplane::RouterDataplane& at(topo::NodeId node) const override {
    return csdn_healthy_ ? primary_->at(node) : backup_->at(node);
  }

 private:
  const dataplane::VectorDataplanes* primary_;
  const sim::DsdnEmulation* backup_;
  bool csdn_healthy_ = true;
};

}  // namespace

int main() {
  topo::Topology topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.5;
  traffic::TrafficMatrix tm = traffic::generate_gravity(topo, gp).aggregated();
  const auto prefixes = topo::assign_router_prefixes(topo);

  // --- dSDN underlay: real on-box controllers, always converging. ---
  sim::DsdnEmulation underlay(topo, tm);
  underlay.bootstrap();
  std::printf("dSDN underlay bootstrapped: %zu controllers, views "
              "identical: %s\n",
              underlay.network().num_nodes(),
              underlay.views_converged() ? "yes" : "no");

  // --- cSDN primary: central solve, programmed into its own tables. ---
  metrics::CsdnCalibration calib;
  csdn::CsdnController central(&topo, calib, {}, 0x1DEA);
  dataplane::VectorDataplanes primary(topo.num_nodes());
  auto program_primary = [&](const te::Solution& solution) {
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      auto& rd = primary.mutable_at(n);
      rd.transit = dataplane::build_transit_fib(topo, n);
      rd.ingress.clear_routes();
      for (topo::NodeId m = 0; m < topo.num_nodes(); ++m) {
        rd.ingress.set_prefix(prefixes[m], m);
      }
    }
    for (const auto& a : solution.allocations) {
      dataplane::EncapEntry entry;
      for (const auto& wp : a.paths) {
        if (wp.path.hops() > dataplane::kMaxLabelDepth) continue;
        entry.routes.push_back(
            {dataplane::encode_strict_route(wp.path), wp.weight});
      }
      if (!entry.routes.empty()) {
        primary.mutable_at(a.demand.src)
            .ingress.set_routes(a.demand.dst, a.demand.priority,
                                std::move(entry));
      }
    }
  };
  program_primary(central.solve(tm));
  std::printf("cSDN primary programmed from the central solve.\n\n");

  LayeredProvider layered(&primary, &underlay);

  auto probe = [&](const char* label) {
    const dataplane::Forwarder fwd(underlay.network(), &layered);
    std::size_t ok = 0, total = 0;
    util::Rng rng(7);
    for (int i = 0; i < 400; ++i) {
      const auto& d = rng.pick(tm.demands());
      dataplane::Packet pkt;
      pkt.dst_ip = topo::host_in(prefixes[d.dst]);
      pkt.priority = d.priority;
      pkt.entropy = util::splitmix64(static_cast<std::uint64_t>(i));
      pkt.ttl = 255;
      const auto r = fwd.forward(std::move(pkt), d.src);
      ++total;
      if (r.outcome == dataplane::ForwardOutcome::kDelivered) ++ok;
    }
    std::printf("%-44s delivery %zu/%zu\n", label, ok, total);
  };

  probe("healthy, cSDN primary:");

  // --- Incident: a CPN failure partitions the central controller right
  //     before a fiber cut. cSDN cannot reprogram anything: fail static.
  std::printf("\n*** CPN partition: central controller unreachable ***\n");
  const topo::LinkId fiber = underlay.network().find_link(
      5, underlay.network().up_neighbors(5).front());
  std::printf("*** fiber cut: %s <-> %s ***\n",
              topo.node(underlay.network().link(fiber).src).name.c_str(),
              topo.node(underlay.network().link(fiber).dst).name.c_str());

  // The dSDN underlay reconverges on its own (in-band NSUs need no CPN).
  underlay.fail_fiber(fiber);
  std::printf("dSDN underlay reconverged in-band: views identical: %s\n\n",
              underlay.views_converged() ? "yes" : "no");

  probe("after cut, cSDN primary (failed static):");
  layered.set_csdn_healthy(false);
  probe("after cut, dSDN backup engaged:");

  std::printf("\nthe backup underlay is capacity-aware TE, not "
              "shortest-path IS-IS -- the first-step benefit §3.2 claims "
              "for incremental deployment.\n");
  return 0;
}
