// WAN failover walkthrough on a B4-scale network: boots ~100 dSDN
// controllers, verifies consensus-free convergence, injects a sequence of
// fiber cuts (including a double failure), and reports delivery health,
// FRR activity, and the convergence traffic the control plane generated.
//
//   $ ./example_wan_failover

#include <cstdio>

#include "sim/convergence.hpp"
#include "sim/emulation.hpp"
#include "topo/synthetic.hpp"
#include "traffic/gravity.hpp"

using namespace dsdn;

namespace {

struct Health {
  std::size_t delivered = 0;
  std::size_t total = 0;
  std::size_t frr = 0;
};

Health probe(const sim::DsdnEmulation& wan, std::size_t samples) {
  Health h;
  util::Rng rng(99);
  const auto& demands = wan.demands().demands();
  for (std::size_t i = 0; i < samples; ++i) {
    const auto& d = rng.pick(demands);
    const auto r = wan.send_packet(d.src, wan.address_of(d.dst), d.priority,
                                   util::splitmix64(i));
    ++h.total;
    if (r.outcome == dataplane::ForwardOutcome::kDelivered) ++h.delivered;
    h.frr += r.frr_activations;
  }
  return h;
}

}  // namespace

int main() {
  topo::Topology topo = topo::make_b4_like();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.1;
  traffic::TrafficMatrix tm = traffic::generate_gravity(topo, gp);

  std::printf("B4-scale WAN: %zu routers, %zu directed links, %zu demands\n",
              topo.num_nodes(), topo.num_links(), tm.size());

  sim::DsdnEmulation wan(topo, tm);
  std::printf("bootstrapping %zu on-box controllers ...\n", topo.num_nodes());
  wan.bootstrap();
  std::printf("  converged in %.0f ms simulated, %zu NSUs delivered, "
              "views identical: %s\n",
              wan.sim_time() * 1e3, wan.messages_delivered(),
              wan.views_converged() ? "yes" : "no");

  Health h = probe(wan, 300);
  std::printf("  delivery probe: %zu/%zu delivered\n\n", h.delivered, h.total);

  // Failure drill: three connectivity-preserving cuts, applied one after
  // another (the second while the first is still down -- a double
  // failure), then repaired.
  const auto fibers = sim::pick_failure_fibers(wan.network(), 3, 0xFA11);
  for (std::size_t i = 0; i < fibers.size(); ++i) {
    const auto& link = wan.network().link(fibers[i]);
    std::printf("cut %zu: %s <-> %s\n", i + 1,
                wan.network().node(link.src).name.c_str(),
                wan.network().node(link.dst).name.c_str());
    const std::size_t msgs_before = wan.messages_delivered();
    wan.fail_fiber(fibers[i]);
    h = probe(wan, 300);
    std::printf("  reconverged (%zu NSU messages, views identical: %s); "
                "delivery %zu/%zu, FRR splices on stale probes: %zu\n",
                wan.messages_delivered() - msgs_before,
                wan.views_converged() ? "yes" : "no", h.delivered, h.total,
                h.frr);
    if (i == 0) continue;  // leave the first fiber down for a double cut
    wan.repair_fiber(fibers[i]);
  }
  wan.repair_fiber(fibers[0]);

  h = probe(wan, 300);
  std::printf("\nall repaired: delivery %zu/%zu, views identical: %s\n",
              h.delivered, h.total, wan.views_converged() ? "yes" : "no");

  // Crash/recovery drill (§3.2 fault tolerance): router 5's controller
  // dies and reloads its NSU database from a neighbor.
  std::printf("\ncrashing controller 5 and recovering from a neighbor ...\n");
  wan.crash_and_recover(5);
  h = probe(wan, 300);
  std::printf("recovered: delivery %zu/%zu, views identical: %s\n",
              h.delivered, h.total, wan.views_converged() ? "yes" : "no");
  return 0;
}
