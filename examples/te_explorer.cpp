// TE explorer: run the B4-style max-min fair TE solver on the TopologyZoo
// networks and compare against plain IGP shortest-path routing -- the
// efficiency argument for (d/c)SDN over greedy distributed placement
// (§2.1: centralized TE reaches up to 60% higher utilization than
// RSVP-TE's greedy CSPF).
//
//   $ ./example_te_explorer

#include <cstdio>

#include "te/solver.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"
#include "util/format.hpp"

using namespace dsdn;

int main() {
  std::printf("%-10s %6s %8s | %22s | %22s\n", "network", "nodes", "demands",
              "shortest-path routing", "max-min fair TE");
  std::printf("%-10s %6s %8s | %10s %11s | %10s %11s\n", "", "", "",
              "max-util", "admitted", "max-util", "admitted");

  for (const auto& entry : topo::zoo_catalog()) {
    const topo::Topology topo = entry.factory();
    // Push the network hard: 1.8x over what shortest paths can carry.
    traffic::GravityParams gp;
    gp.target_max_utilization = 1.8;
    const auto tm = traffic::generate_gravity(topo, gp).aggregated();

    // Baseline: everything on IGP shortest paths, drop the excess.
    std::vector<double> load(topo.num_links(), 0.0);
    double admitted_sp = 0.0;
    for (const auto& d : tm.demands()) {
      const auto p = te::shortest_path(topo, d.src, d.dst);
      if (!p) continue;
      // Admission up to the bottleneck's remaining capacity.
      double bottleneck = 1e18;
      for (topo::LinkId l : p->links) {
        bottleneck = std::min(bottleneck,
                              topo.link(l).capacity_gbps - load[l]);
      }
      const double rate = std::min(d.rate_gbps, std::max(0.0, bottleneck));
      for (topo::LinkId l : p->links) load[l] += rate;
      admitted_sp += rate;
    }
    double maxutil_sp = 0.0;
    for (std::size_t l = 0; l < load.size(); ++l) {
      maxutil_sp = std::max(
          maxutil_sp, load[l] / topo.link(static_cast<topo::LinkId>(l))
                                    .capacity_gbps);
    }

    // TE: the same solver every dSDN controller runs.
    const auto solution = te::Solver().solve(topo, tm);

    std::printf("%-10s %6zu %8zu | %9.0f%% %10.0f%% | %9.0f%% %10.0f%%\n",
                entry.name, topo.num_nodes(), tm.size(), 100.0 * maxutil_sp,
                100.0 * admitted_sp / tm.total_rate_gbps(),
                100.0 * solution.max_utilization(topo),
                100.0 * solution.total_allocated_gbps() /
                    tm.total_rate_gbps());
  }
  std::printf("\nTE admits more of the offered load by spreading flows over "
              "non-shortest paths while never oversubscribing a link.\n");
  return 0;
}
