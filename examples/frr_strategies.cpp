// FRR strategy comparison (Appendix C) on a live packet walk: program a
// network, cut the fiber a route depends on, and watch how each bypass
// strategy repairs the same packet -- including where the detour goes and
// what it costs in latency.
//
//   $ ./example_frr_strategies

#include <cstdio>

#include "dataplane/forwarder.hpp"
#include "te/solver.hpp"
#include "topo/zoo.hpp"
#include "topo/prefix.hpp"
#include "traffic/gravity.hpp"

using namespace dsdn;

int main() {
  topo::Topology topo = topo::make_geant();
  const auto prefixes = topo::assign_router_prefixes(topo);
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.9;
  const auto tm = traffic::generate_gravity(topo, gp).aggregated();
  const auto solution = te::Solver().solve(topo, tm);
  const auto residual = solution.residual_capacity(topo);

  // Program the data plane from the TE solution.
  dataplane::VectorDataplanes routers(topo.num_nodes());
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    auto& rd = routers.mutable_at(n);
    rd.transit = dataplane::build_transit_fib(topo, n);
    for (topo::NodeId m = 0; m < topo.num_nodes(); ++m) {
      rd.ingress.set_prefix(prefixes[m], m);
    }
  }
  for (const auto& a : solution.allocations) {
    dataplane::EncapEntry entry;
    for (const auto& wp : a.paths) {
      if (wp.path.hops() > dataplane::kMaxLabelDepth) continue;
      entry.routes.push_back(
          {dataplane::encode_strict_route(wp.path), wp.weight});
    }
    if (!entry.routes.empty()) {
      routers.mutable_at(a.demand.src)
          .ingress.set_routes(a.demand.dst, a.demand.priority,
                              std::move(entry));
    }
  }

  // Find a demand whose route has >= 2 hops, and cut its middle fiber.
  const dataplane::Forwarder plain(topo, &routers);
  topo::NodeId src = 0, dst = 0;
  for (const auto& a : solution.allocations) {
    if (!a.paths.empty() && a.paths[0].path.hops() >= 2) {
      src = a.demand.src;
      dst = a.demand.dst;
      break;
    }
  }
  dataplane::Packet probe;
  probe.dst_ip = topo::host_in(prefixes[dst]);
  const auto before = plain.forward(probe, src);
  std::printf("healthy route %s -> %s: ", topo.node(src).name.c_str(),
              topo.node(dst).name.c_str());
  for (std::size_t i = 0; i < before.trace.size(); ++i) {
    std::printf("%s%s", i ? "->" : "", topo.node(before.trace[i]).name.c_str());
  }
  std::printf("  (%.2f ms)\n", before.latency_s * 1e3);

  const topo::LinkId fiber =
      topo.find_link(before.trace[before.trace.size() / 2 - 1],
                     before.trace[before.trace.size() / 2]);
  std::printf("cutting mid-route fiber %s <-> %s\n\n",
              topo.node(topo.link(fiber).src).name.c_str(),
              topo.node(topo.link(fiber).dst).name.c_str());

  // Pre-install bypasses under each strategy, then cut and re-probe.
  for (const auto strategy : {dataplane::BypassStrategy::kShortestPath,
                              dataplane::BypassStrategy::kCapacityAware,
                              dataplane::BypassStrategy::kKShortestPaths,
                              dataplane::BypassStrategy::kKCapacityAware}) {
    const auto plan = dataplane::BypassPlan::compute_for_links(
        topo, strategy, {fiber, topo.link(fiber).reverse}, residual, 16);
    topo.set_duplex_up(fiber, false);
    const dataplane::Forwarder fwd(topo, &routers, &plan);
    const auto after = fwd.forward(probe, src);
    std::printf("%-18s %s: ", dataplane::bypass_strategy_name(strategy),
                dataplane::forward_outcome_name(after.outcome));
    for (std::size_t i = 0; i < after.trace.size(); ++i) {
      std::printf("%s%s", i ? "->" : "",
                  topo.node(after.trace[i]).name.c_str());
    }
    if (after.outcome == dataplane::ForwardOutcome::kDelivered) {
      std::printf("  (%.2f ms, %.2fx, %zu FRR splice%s)",
                  after.latency_s * 1e3, after.latency_s / before.latency_s,
                  after.frr_activations,
                  after.frr_activations == 1 ? "" : "s");
    }
    std::printf("\n");
    topo.set_duplex_up(fiber, true);
  }
  std::printf("\nthe headend never learned of the failure: every repair "
              "happened at the router adjacent to the cut.\n");
  return 0;
}
