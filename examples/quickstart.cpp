// Quickstart: boot a 4-router dSDN network, watch the controllers flood
// NSUs and converge, send a packet, cut a fiber, and watch the network
// heal itself -- no external controller anywhere.
//
//   $ ./example_quickstart

#include <cstdio>

#include "sim/emulation.hpp"
#include "topo/synthetic.hpp"
#include "traffic/gravity.hpp"

using namespace dsdn;

int main() {
  // 1. A small WAN: four routers in a ring, 100G fibers.
  topo::Topology topo = topo::make_ring(4);

  // 2. Traffic demands (normally measured in-band; here, a gravity model).
  traffic::TrafficMatrix tm = traffic::generate_gravity(topo);

  // 3. One dSDN controller per router, wired through an event-driven WAN
  //    emulation that delivers NSUs with per-link latency.
  sim::DsdnEmulation wan(topo, tm);
  wan.bootstrap();

  std::printf("bootstrapped %zu controllers in %.1f ms of simulated time "
              "(%zu NSU messages)\n",
              wan.network().num_nodes(), wan.sim_time() * 1e3,
              wan.messages_delivered());
  std::printf("all views converged: %s\n",
              wan.views_converged() ? "yes" : "no");

  // 4. Send a packet from router 0 to a host behind router 2. The headend
  //    maps the destination prefix to its egress router, picks a
  //    TE-computed source route, and pushes the MPLS label stack.
  auto show = [&](const char* what) {
    const auto r = wan.send_packet(0, wan.address_of(2));
    std::printf("%s: %s via [", what,
                dataplane::forward_outcome_name(r.outcome));
    for (std::size_t i = 0; i < r.trace.size(); ++i) {
      std::printf("%s%s", i ? " -> " : "",
                  wan.network().node(r.trace[i]).name.c_str());
    }
    std::printf("] (%zu hops, %.2f ms)\n", r.hops, r.latency_s * 1e3);
  };
  show("healthy ");

  // 5. Cut the fiber the packet was using. The incident routers flood
  //    fresh NSUs; every headend recomputes TE locally and reprograms
  //    only its own routes.
  const topo::LinkId fiber = wan.network().find_link(0, 1);
  std::printf("\ncutting fiber %s <-> %s ...\n",
              wan.network().node(0).name.c_str(),
              wan.network().node(1).name.c_str());
  wan.fail_fiber(fiber);
  show("after cut");

  // 6. Repair it; the network converges back.
  std::printf("\nrepairing the fiber ...\n");
  wan.repair_fiber(fiber);
  show("repaired ");

  std::printf("\nviews converged throughout: %s\n",
              wan.views_converged() ? "yes" : "no");
  return 0;
}
