#!/usr/bin/env python3
"""Validate BENCH_*.json run artifacts against scripts/bench_schema.json.

Usage: validate_bench_json.py [--schema SCHEMA] FILE [FILE...]
           [--baseline BASELINE --regress METRIC[,METRIC...] [--slack F]]

Implements the small JSON-Schema subset the schema file uses (type,
required, properties, additionalProperties, items, minimum, $ref into
#/definitions) so tier-1 needs nothing beyond the python3 stdlib.
Exits non-zero and prints one line per violation if any file fails.

With --baseline, each validated file whose "name" matches the baseline
artifact is additionally compared on the listed lower-is-better metrics:
a current value above baseline * slack prints a WARN line. The compare
is warn-only -- machines differ -- so it never affects the exit code.
"""

import argparse
import json
import sys
from pathlib import Path

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it from numeric types.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def resolve_ref(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref: {ref}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path, errors):
    schema = resolve_ref(schema, root)

    stype = schema.get("type")
    if stype is not None:
        allowed = stype if isinstance(stype, list) else [stype]
        if not any(TYPE_CHECKS[t](value) for t in allowed):
            errors.append(
                f"{path}: expected {'/'.join(allowed)}, "
                f"got {type(value).__name__}")
            return  # structural checks below would just cascade

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key '{req}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], root, f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, root, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]", errors)


def compare_baseline(name, doc, baseline, metrics, slack):
    """Warn-only perf-regression check against a checked-in artifact."""
    if doc.get("name") != baseline.get("name"):
        return
    cur = doc.get("metrics", {})
    base = baseline.get("metrics", {})
    for metric in metrics:
        if metric not in cur or metric not in base:
            print(f"WARN {name}: metric '{metric}' missing from "
                  f"{'current' if metric not in cur else 'baseline'} "
                  "artifact; baseline needs refreshing")
            continue
        limit = base[metric] * slack
        if cur[metric] > limit:
            print(f"WARN {name}: {metric} regressed: {cur[metric]:.6g} > "
                  f"baseline {base[metric]:.6g} * slack {slack:g} "
                  "(warn-only)")
        else:
            print(f"OK   {name}: {metric} {cur[metric]:.6g} within "
                  f"{slack:g}x of baseline {base[metric]:.6g}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--schema",
                    default=Path(__file__).with_name("bench_schema.json"))
    ap.add_argument("--baseline",
                    help="checked-in BENCH_*.json to compare against")
    ap.add_argument("--regress", default="",
                    help="comma-separated lower-is-better metrics to check")
    ap.add_argument("--slack", type=float, default=1.5,
                    help="warn when current > baseline * slack")
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    baseline = None
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
    regress_metrics = [m for m in args.regress.split(",") if m]

    failed = False
    for name in args.files:
        try:
            with open(name) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {name}: {e}")
            failed = True
            continue
        errors = []
        validate(doc, schema, schema, "$", errors)
        if errors:
            failed = True
            print(f"FAIL {name}:")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"OK   {name}")
            if baseline is not None:
                compare_baseline(name, doc, baseline, regress_metrics,
                                 args.slack)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
