#!/usr/bin/env python3
"""Validate BENCH_*.json run artifacts against scripts/bench_schema.json.

Usage: validate_bench_json.py [--schema SCHEMA] FILE [FILE...]

Implements the small JSON-Schema subset the schema file uses (type,
required, properties, additionalProperties, items, minimum, $ref into
#/definitions) so tier-1 needs nothing beyond the python3 stdlib.
Exits non-zero and prints one line per violation if any file fails.
"""

import argparse
import json
import sys
from pathlib import Path

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it from numeric types.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def resolve_ref(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref: {ref}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path, errors):
    schema = resolve_ref(schema, root)

    stype = schema.get("type")
    if stype is not None:
        allowed = stype if isinstance(stype, list) else [stype]
        if not any(TYPE_CHECKS[t](value) for t in allowed):
            errors.append(
                f"{path}: expected {'/'.join(allowed)}, "
                f"got {type(value).__name__}")
            return  # structural checks below would just cascade

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key '{req}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], root, f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, root, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]", errors)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--schema",
                    default=Path(__file__).with_name("bench_schema.json"))
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    failed = False
    for name in args.files:
        try:
            with open(name) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {name}: {e}")
            failed = True
            continue
        errors = []
        validate(doc, schema, schema, "$", errors)
        if errors:
            failed = True
            print(f"FAIL {name}:")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"OK   {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
