#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency
# suites (thread pool, event queue) again under ThreadSanitizer.
#
#   scripts/tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> tier-1: build + ctest (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "==> tier-1: TSan build (build-tsan/) -- test_parallel + test_sim"
cmake -B build-tsan -S . -DDSDN_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target test_parallel test_sim
(cd build-tsan && ctest --output-on-failure -R '^(test_parallel|test_sim)$')

echo "==> tier-1: ASan build (build-asan/) -- wire fuzz corpus + fault injection"
cmake -B build-asan -S . -DDSDN_SANITIZE=address -DDSDN_FUZZ=ON >/dev/null
cmake --build build-asan -j "${JOBS}" --target fuzz_wire test_wire test_fault_injection
./build-asan/fuzz/fuzz_wire -max_total_time=30 tests/corpus/wire
(cd build-asan && ctest --output-on-failure -R '^(test_wire|test_fault_injection)$')

echo "==> tier-1: all green"
