#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, the concurrency suites
# (thread pool, event queue, metrics shards) again under ThreadSanitizer,
# the obs/metrics suites under UBSan, the wire fuzz corpus under ASan,
# and a bench-artifact run validated against scripts/bench_schema.json.
#
#   scripts/tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> tier-1: build + ctest (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "==> tier-1: bench artifact (build/) -- DSDN_BENCH_JSON schema check"
ARTIFACT_DIR="build/bench-artifacts"
rm -rf "${ARTIFACT_DIR}"
DSDN_BENCH_JSON="${ARTIFACT_DIR}" \
  ./build/bench/bench_fig08_convergence_components >/dev/null
DSDN_BENCH_JSON="${ARTIFACT_DIR}" \
  ./build/bench/bench_fig09_b2_convergence >/dev/null
# Dataplane pps smoke: short phase 1, a couple of churn cycles; the bench
# exits nonzero on any forwarding invariant violation (loops, unknown
# labels, quiesced hard drops).
DSDN_BENCH_JSON="${ARTIFACT_DIR}" \
  ./build/bench/bench_dataplane_pps --seconds=0.5 --churn=2 >/dev/null
# Sharding ablation (flows exposed / NSU fan-out by K) artifact.
DSDN_BENCH_JSON="${ARTIFACT_DIR}" \
  ./build/bench/bench_ablation_sharding >/dev/null
# Hierarchical scale smoke: the bench exits nonzero when the >= 5x
# speedup / <= 10% gap gate or the 1/K plane-containment bar fails.
DSDN_BENCH_JSON="${ARTIFACT_DIR}" \
  ./build/bench/bench_hier_scale >/dev/null
# Closed-loop online TE: controllers steer on estimated demand while
# the oracle drifts; exits nonzero on any invariant violation or when
# the hybrid policy misses the <= 10% regret / <= 25% recompute gate.
DSDN_BENCH_JSON="${ARTIFACT_DIR}" \
  ./build/bench/bench_online_te >/dev/null
# SR-vs-strict trade: exits nonzero when segment stacks exceed 3 labels,
# SR route/FIB state is not below strict MPLS, or the SrSolver placement
# gap exceeds 10% on the fig 8/15 workloads.
DSDN_BENCH_JSON="${ARTIFACT_DIR}" \
  ./build/bench/bench_sr_trade >/dev/null
python3 scripts/validate_bench_json.py "${ARTIFACT_DIR}"/BENCH_*.json

echo "==> tier-1: perf regression (warn-only) -- fig13 cold medians vs baseline"
DSDN_BENCH_JSON="${ARTIFACT_DIR}" ./build/bench/bench_fig13_cores >/dev/null
python3 scripts/validate_bench_json.py \
  "${ARTIFACT_DIR}"/BENCH_fig13_cores.json \
  --baseline scripts/bench_baselines/BENCH_fig13_cores.json \
  --regress cold_median_batch_s,tcomp_8thread_best_s

echo "==> tier-1: perf regression (warn-only) -- hier solve time + gap vs baseline"
python3 scripts/validate_bench_json.py \
  "${ARTIFACT_DIR}"/BENCH_hier_scale.json \
  --baseline scripts/bench_baselines/BENCH_hier_scale.json \
  --regress hier_solve_s,gap_fraction

echo "==> tier-1: perf regression (warn-only) -- online TE regret vs baseline"
python3 scripts/validate_bench_json.py \
  "${ARTIFACT_DIR}"/BENCH_online_te.json \
  --baseline scripts/bench_baselines/BENCH_online_te.json \
  --regress abilene_hybrid_regret_fraction,abilene_hybrid_bad_seconds

echo "==> tier-1: perf regression (warn-only) -- SR trade vs baseline"
python3 scripts/validate_bench_json.py \
  "${ARTIFACT_DIR}"/BENCH_sr_trade.json \
  --baseline scripts/bench_baselines/BENCH_sr_trade.json \
  --regress worst_gap_fraction,worst_fib_entries_ratio

echo "==> tier-1: TSan build (build-tsan/) -- concurrency suites + batched dataplane"
cmake -B build-tsan -S . -DDSDN_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target test_parallel test_sim test_obs \
  test_dataplane test_batch_pipeline test_batch_solver
(cd build-tsan && ctest --output-on-failure \
  -R '^(test_parallel|test_sim|test_obs|test_dataplane|test_batch_pipeline|test_batch_solver)$')

echo "==> tier-1: UBSan build (build-ubsan/) -- test_obs + test_metrics"
cmake -B build-ubsan -S . -DDSDN_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "${JOBS}" --target test_obs test_metrics
(cd build-ubsan && ctest --output-on-failure -R '^(test_obs|test_metrics)$')

echo "==> tier-1: ASan build (build-asan/) -- wire fuzz corpus + fault injection"
cmake -B build-asan -S . -DDSDN_SANITIZE=address -DDSDN_FUZZ=ON >/dev/null
cmake --build build-asan -j "${JOBS}" --target fuzz_wire test_wire test_fault_injection
./build-asan/fuzz/fuzz_wire -max_total_time=30 tests/corpus/wire
(cd build-asan && ctest --output-on-failure -R '^(test_wire|test_fault_injection)$')

echo "==> tier-1: ASan dataplane -- batched pipeline + sublabel bounds"
cmake --build build-asan -j "${JOBS}" --target test_batch_pipeline test_sublabel
(cd build-asan && ctest --output-on-failure -R '^(test_batch_pipeline|test_sublabel)$')

echo "==> tier-1: ASan differential check -- incremental TE + batch solver parity"
cmake --build build-asan -j "${JOBS}" --target test_incremental test_batch_solver
(cd build-asan && ctest --output-on-failure -R '^(test_incremental|test_batch_solver)$')

echo "==> tier-1: scenario seed swarm (build/) -- 32 seeds, invariants each event"
# Bounded ~60 s: 28 Abilene histories (24 events each, lossy flooding)
# plus 2 B4-like and 2 B2-small histories. scripts/scenario_swarm.sh
# runs the full-size sweeps.
cmake --build build -j "${JOBS}" --target scenario_swarm
./build/tests/scenario_swarm --topo abilene --seeds 28 --lossy
./build/tests/scenario_swarm --topo b4 --seeds 2
./build/tests/scenario_swarm --topo b2small --seeds 2

echo "==> tier-1: mixed SR/strict fleet swarm (build/) -- 25 seeds, invariants each event"
# Deterministic mixed fleet (SR majority + strict TE + shortest-path
# members): every event re-checks loop-freedom, delivery, conservation,
# and per-view placement agreement with segment stacks in play.
./build/tests/scenario_swarm --topo abilene --seeds 23 --sr
./build/tests/scenario_swarm --topo b4 --seeds 2 --sr

echo "==> tier-1: hierarchical plane swarm (build/) -- cuts, SRLGs, crash/rebalance"
# Full checker battery (solution parity on): per-plane invariants plus
# cross-plane conservation, HRW placement agreement, and blast radius.
./build/tests/scenario_swarm --topo abilene --planes 3 --seeds 24
./build/tests/scenario_swarm --topo b4 --planes 4 --seeds 2

echo "==> tier-1: closed-loop online TE swarm (build/) -- estimated demand only"
# 10 Abilene seeds x 64 epochs of diurnal + flash-crowd drift + churn,
# hybrid recompute policy, invariant suite sampled every 16 epochs.
./build/tests/scenario_swarm --topo abilene --closed-loop --seeds 10

echo "==> tier-1: ASan scenario swarm (build-asan/) -- lossy churn under ASan"
cmake --build build-asan -j "${JOBS}" --target scenario_swarm
./build-asan/tests/scenario_swarm --topo abilene --seeds 4 --lossy

echo "==> tier-1: all green"
