#!/usr/bin/env bash
# Seed-swarm driver for the deterministic scenario harness: builds the
# scenario_swarm runner and sweeps N seeds per topology, each seed a
# long-horizon churn schedule (cuts, flaps, SRLG failures, crash and
# cold restarts, demand surges, lossy flooding, incremental-TE toggles)
# with the full invariant suite checked after every event. On failure it
# prints the minimal shrunk event schedule plus the replay command.
#
#   scripts/scenario_swarm.sh [seeds] [extra scenario_swarm flags...]
#
# Examples:
#   scripts/scenario_swarm.sh                 # 32 seeds, all topologies
#   scripts/scenario_swarm.sh 500             # the full acceptance sweep
#   scripts/scenario_swarm.sh 64 --lossy      # with flooding-plane faults
#   scripts/scenario_swarm.sh 8 --topo abilene --bug   # planted-bug demo
set -euo pipefail

cd "$(dirname "$0")/.."
SEEDS="${1:-32}"
shift || true

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target scenario_swarm >/dev/null

exec ./build/tests/scenario_swarm --topo all --seeds "${SEEDS}" "$@"
