// Figure 12: timeline of blast radius (% of impacted flow groups, lowest
// priority class) for a single selected failure event, cSDN vs dSDN.
// Expected shape: both spike at the failure; dSDN's headends reconverge
// independently within seconds while cSDN's repair stretches out across
// its two-phase programming tail.

#include "bench_common.hpp"
#include "sim/transient.hpp"

using namespace dsdn;

int main() {
  bench::banner(
      "Figure 12: blast-radius timeline of one failure event (P-low)");

  const auto w = bench::b4_workload(/*target_util=*/0.75);

  for (const sim::Scheme scheme : {sim::Scheme::kCsdn, sim::Scheme::kDsdn}) {
    sim::TransientConfig cfg;
    cfg.scheme = scheme;
    cfg.failures.days = 30;
    cfg.failures.mttf_days = 60;
    cfg.failures.seed = 0xF12;
    cfg.seed = 0x512;
    cfg.timeline_event = 0;  // first failure
    cfg.max_eval_points_per_event = 24;
    sim::TransientSimulator simulator(w.topo, w.tm, cfg);
    const auto result = simulator.run();

    std::printf("--- %s ---\n", sim::scheme_name(scheme));
    if (result.timeline.empty()) {
      std::printf("(event had no measurable impact)\n\n");
      continue;
    }
    std::printf("%s", metrics::render_timeline(result.timeline).c_str());
    std::printf("event convergence span: %s\n\n",
                util::format_duration(
                    result.events.front().convergence_span_s)
                    .c_str());
  }
  return 0;
}
