// Figure 16: dSDN TE runtime on B2 snapshots as the network grew over
// three years toward ~1000 nodes, on the datacenter server vs the Arista
// router, with a linear trendline.
//
// Expected shape: runtime grows steadily with network size; extrapolating
// the trend against an operator threshold leaves many years of headroom
// (the paper extrapolates ~15 years against RSVP-TE's 106.6 s).

#include "bench_common.hpp"

#include "metrics/calibration.hpp"
#include "te/solver.hpp"

using namespace dsdn;

int main() {
  bench::banner("Figure 16: Tcomp across B2 growth snapshots");

  const auto snaps =
      topo::b2_growth_snapshots(12, bench::full_scale() ? 1.0 : 0.6);

  std::printf("%-9s %7s %8s  %18s  %18s\n", "snapshot", "nodes", "demands",
              "Datacenter Server", "Arista Router");

  std::vector<double> xs, ys;
  for (const auto& snap : snaps) {
    traffic::GravityParams gp;
    gp.pair_fraction = bench::full_scale() ? 0.03 : 0.01;
    gp.seed = 0xF16;
    const auto tm = traffic::generate_gravity(snap.topo, gp).aggregated();
    te::SolveStats stats;
    te::Solver().solve(snap.topo, tm, &stats);
    const double server = stats.wall_time_s;
    std::printf("%-9s %7zu %8zu  %18s  %18s\n", snap.label.c_str(),
                snap.topo.num_nodes(), tm.size(),
                util::format_duration(server).c_str(),
                util::format_duration(server /
                                      metrics::kRouterCpuSpeedRatio)
                    .c_str());
    xs.push_back(static_cast<double>(xs.size()));
    ys.push_back(server);
  }

  // Least-squares trendline over snapshot index.
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double intercept = (sy - slope * sx) / n;
  std::printf("\ntrendline: Tcomp ~= %s + %s per quarter\n",
              util::format_duration(intercept).c_str(),
              util::format_duration(slope).c_str());
  // Headroom against a threshold ~3.5x the final router-scaled runtime
  // (the paper's threshold, RSVP-TE's 106.6s, sits ~3.5x above dSDN's
  // 29.8s B2 convergence time).
  const double final_router = ys.back() / metrics::kRouterCpuSpeedRatio;
  const double threshold = 3.5 * final_router;
  if (slope > 0) {
    const double quarters =
        (threshold * metrics::kRouterCpuSpeedRatio - ys.back()) / slope;
    std::printf("extrapolated headroom to the operator threshold: "
                "%.0f quarters (~%.0f years) of continued growth "
                "(paper: ~15 years)\n",
                quarters, quarters / 4.0);
  }
  return 0;
}
