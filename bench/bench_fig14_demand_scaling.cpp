// Figure 14: Tcomp for B2 with the traffic demand scaled by a constant
// multiplier (0.25 .. 2.0) on a static topology, with 4 cores available
// to the router's TE (guaranteeing 2 cores for other control-plane use).
//
// Expected shape: runtime grows roughly linearly with the demand
// multiplier; the router curve sits ~1/0.68 above the server curve.
//
// The progressive-filling quantum is pinned to the base (1.0x) matrix so
// that heavier matrices genuinely take more waterfill rounds, as in the
// paper's solver.

#include <thread>

#include "bench_common.hpp"

#include "metrics/calibration.hpp"
#include "te/solver.hpp"

using namespace dsdn;

int main() {
  bench::banner("Figure 14: Tcomp vs traffic-demand multiplier (B2)");

  bench::BenchRun run("fig14_demand_scaling");
  const auto w = bench::b2_workload();
  bench::print_workload(w, "(at 1.0x)");
  run.workload(w);

  double max_rate = 0;
  for (const auto& d : w.tm.demands())
    max_rate = std::max(max_rate, d.rate_gbps);

  te::SolverOptions opt;
  opt.num_threads = std::min<std::size_t>(
      4, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  opt.quantum_gbps = max_rate / 8.0;
  te::Solver solver(opt);

  std::printf("%11s  %18s  %18s  %8s\n", "multiplier", "Datacenter Server",
              "Arista Router", "rounds");
  double first = 0, last = 0;
  const double multipliers[] = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0};
  for (const double m : multipliers) {
    const auto tm = w.tm.scaled(m);
    te::SolveStats stats;
    solver.solve(w.topo, tm, &stats);
    const double server = stats.wall_time_s;
    const double router = server / metrics::kRouterCpuSpeedRatio;
    std::printf("%10.2fx  %18s  %18s  %8zu\n", m,
                util::format_duration(server).c_str(),
                util::format_duration(router).c_str(), stats.rounds);
    if (m == multipliers[0]) first = server;
    last = server;
    char key[48];
    std::snprintf(key, sizeof(key), "tcomp_server_s.%.2fx", m);
    run.out().metric(key, server);
  }
  std::printf("\nshape check: 2.0x demand costs %.1fx the 0.25x solve "
              "(paper: roughly linear growth, still under the RSVP-TE "
              "convergence threshold at 2x)\n",
              last / first);
  run.out().metric("growth_2x_over_quarter", last / first);
  return 0;
}
