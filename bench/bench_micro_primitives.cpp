// google-benchmark microbenchmarks for the core primitives: Dijkstra /
// CSPF, Yen k-shortest paths, label encode/decode, two-stage ingress
// lookup, transit lookup, sublabel table build, NSU flooding-step
// processing, and full TE solves at small scale.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>

#include "core/controller.hpp"
#include "core/nsu.hpp"
#include "dataplane/fib.hpp"
#include "metrics/distribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "te/parallel_solver.hpp"
#include "dataplane/label.hpp"
#include "dataplane/sublabel.hpp"
#include "te/ksp.hpp"
#include "te/path_cache.hpp"
#include "te/solver.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

using namespace dsdn;

namespace {

const topo::Topology& b4() {
  static const topo::Topology t = topo::make_b4_like();
  return t;
}

const traffic::TrafficMatrix& b4_tm() {
  static const traffic::TrafficMatrix tm = [] {
    traffic::GravityParams gp;
    gp.pair_fraction = 0.1;
    return traffic::generate_gravity(b4(), gp).aggregated();
  }();
  return tm;
}

void BM_Dijkstra_B4(benchmark::State& state) {
  const auto& t = b4();
  topo::NodeId dst = static_cast<topo::NodeId>(t.num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(te::shortest_path(t, 0, dst));
  }
}
BENCHMARK(BM_Dijkstra_B4);

void BM_DijkstraTree_B4(benchmark::State& state) {
  const auto& t = b4();
  for (auto _ : state) {
    benchmark::DoNotOptimize(te::shortest_path_tree(t, 0));
  }
}
BENCHMARK(BM_DijkstraTree_B4);

void BM_Cspf_B4(benchmark::State& state) {
  const auto& t = b4();
  std::vector<double> residual(t.num_links(), 50.0);
  te::SpConstraints c;
  c.residual_gbps = &residual;
  c.min_residual = 1.0;
  topo::NodeId dst = static_cast<topo::NodeId>(t.num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(te::shortest_path(t, 0, dst, c));
  }
}
BENCHMARK(BM_Cspf_B4);

void BM_Yen_K16_Geant(benchmark::State& state) {
  const auto t = topo::make_geant();
  for (auto _ : state) {
    benchmark::DoNotOptimize(te::k_shortest_paths(t, 0, 15, 16));
  }
}
BENCHMARK(BM_Yen_K16_Geant);

void BM_PathCacheHit(benchmark::State& state) {
  const auto& t = b4();
  static const te::PathCache cache(t);
  std::vector<double> residual(t.num_links(), 50.0);
  te::SpConstraints c;
  c.residual_gbps = &residual;
  c.min_residual = 1.0;
  topo::NodeId dst = static_cast<topo::NodeId>(t.num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(t, 0, dst, c));
  }
}
BENCHMARK(BM_PathCacheHit);

void BM_PathCacheRepairHit(benchmark::State& state) {
  // Primary entry saturated; the memoized repair path serves the miss.
  const auto& t = b4();
  const te::PathCache cache(t);
  std::vector<double> residual(t.num_links(), 50.0);
  te::SpConstraints c;
  c.residual_gbps = &residual;
  c.min_residual = 1.0;
  topo::NodeId dst = static_cast<topo::NodeId>(t.num_nodes() - 1);
  const auto primary = cache.get(t, 0, dst, c);
  for (topo::LinkId l : primary->links) residual[l] = 0.0;
  benchmark::DoNotOptimize(cache.get(t, 0, dst, c));  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(t, 0, dst, c));
  }
}
BENCHMARK(BM_PathCacheRepairHit);

void BM_ParallelForSmallN(benchmark::State& state) {
  // Per-call dispatch overhead of the persistent pool on a tiny index
  // space -- the seed implementation paid a thread spawn+join here.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  te::ThreadPool pool(threads);
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(8, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ParallelForSmallN)->Arg(1)->Arg(4)->Arg(8);

void BM_EventQueueChurn(benchmark::State& state) {
  // Schedule+run cycles with captured-state callbacks: the simulator's
  // hot loop (step() must move entries out of the heap, not copy).
  for (auto _ : state) {
    sim::EventQueue q;
    std::size_t fired = 0;
    std::vector<double> payload(16, 1.0);
    for (int i = 0; i < 256; ++i) {
      q.schedule(static_cast<double>(i), [payload, &fired] {
        fired += payload.size();
      });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_ValidateNsu(benchmark::State& state) {
  // Once per flooded NSU per router; must not allocate.
  core::NodeStateUpdate nsu;
  nsu.origin = 0;
  for (topo::LinkId l = 0; l < 32; ++l) {
    core::LinkAdvert a;
    a.link = l;
    a.peer = static_cast<topo::NodeId>(l + 1);
    a.capacity_gbps = 100.0;
    nsu.links.push_back(a);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::validate_nsu(nsu));
  }
}
BENCHMARK(BM_ValidateNsu);

void BM_LabelEncodeDecode(benchmark::State& state) {
  const auto t = topo::make_line(11);
  te::Path p;
  for (std::size_t i = 0; i + 1 < 11; ++i)
    p.links.push_back(t.find_link(static_cast<topo::NodeId>(i),
                                  static_cast<topo::NodeId>(i + 1)));
  for (auto _ : state) {
    auto stack = dataplane::encode_strict_route(p);
    benchmark::DoNotOptimize(dataplane::decode_strict_route(stack));
  }
}
BENCHMARK(BM_LabelEncodeDecode);

void BM_IngressLookup(benchmark::State& state) {
  dataplane::IngressFib fib;
  const auto prefixes = topo::assign_router_prefixes(b4());
  for (topo::NodeId n = 0; n < b4().num_nodes(); ++n) {
    fib.set_prefix(prefixes[n], n);
    dataplane::EncapEntry e;
    e.routes.push_back({dataplane::LabelStack({17, 18, 19}), 0.5});
    e.routes.push_back({dataplane::LabelStack({20, 21}), 0.5});
    fib.set_routes(n, metrics::PriorityClass::kHigh, e);
  }
  const std::uint32_t ip = topo::host_in(prefixes[42]);
  std::uint64_t entropy = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fib.lookup(ip, metrics::PriorityClass::kHigh, entropy++));
  }
}
BENCHMARK(BM_IngressLookup);

void BM_TransitLookup(benchmark::State& state) {
  const auto fib = dataplane::build_transit_fib(b4(), 0);
  const dataplane::Label l =
      dataplane::link_label(b4().node(0).out_links.front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.lookup(l));
  }
}
BENCHMARK(BM_TransitLookup);

void BM_SublabelTableBuild_B4(benchmark::State& state) {
  const auto& t = b4();
  const auto a = dataplane::assign_sublabels(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dataplane::SublabelFib::build(t, 0, a));
  }
}
BENCHMARK(BM_SublabelTableBuild_B4);

void BM_NsuHandle(benchmark::State& state) {
  const auto& t = b4();
  core::ControllerConfig cc;
  cc.self = 1;
  core::Controller receiver(cc, t);
  traffic::TrafficMatrix tm = b4_tm();
  const auto prefixes = topo::assign_router_prefixes(t);
  core::SimTelemetry telemetry(&t, &tm, prefixes);
  core::ControllerConfig cc0;
  cc0.self = 0;
  core::Controller sender(cc0, t);
  std::uint64_t seq = 0;
  core::LocalState ls(0);
  auto nsu = ls.snapshot(telemetry);
  const topo::LinkId arrival = t.find_link(0, t.up_neighbors(0).front());
  for (auto _ : state) {
    nsu.seq = ++seq;
    benchmark::DoNotOptimize(receiver.handle_nsu(nsu, arrival));
  }
}
BENCHMARK(BM_NsuHandle);

void BM_PercentileSweep(benchmark::State& state) {
  // The bench reporting hot path: many percentile queries against one
  // distribution. The sorted cache makes the sweep sort-once; before the
  // incremental cache each query after any add() re-sorted all samples.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  metrics::EmpiricalDistribution d;
  std::uint64_t x = 0x243F6A8885A308D3ull;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    d.add(static_cast<double>(x % 100000) * 1e-5);
  }
  const double ps[] = {1, 2, 5, 10, 25, 50, 75, 90, 95, 98, 99, 99.9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.percentiles(ps));
  }
}
BENCHMARK(BM_PercentileSweep)->Arg(1000)->Arg(100000);

void BM_PercentileAfterAppend(benchmark::State& state) {
  // Interleaved add+query (the transient sim's pattern): the incremental
  // tail merge keeps this O(sorted tail) instead of O(n log n) per query.
  metrics::EmpiricalDistribution d;
  double v = 0.5;
  for (auto _ : state) {
    v = v * 1664525.0 + 1013904223.0;
    v -= std::floor(v);
    d.add(v);
    benchmark::DoNotOptimize(d.percentile(99));
  }
}
BENCHMARK(BM_PercentileAfterAppend);

void BM_CounterInc(benchmark::State& state) {
  // One sharded-counter increment: the price of a metric on a hot path.
  static obs::Counter& c =
      obs::Registry::global().counter("bench.counter_inc");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "bench.histogram_record", obs::default_time_bounds_s());
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v = v < 10.0 ? v * 1.01 : 1e-6;
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_SpanDisabled(benchmark::State& state) {
  // A span with the tracer off: one relaxed load, no clock reads.
  obs::Tracer::global().disable();
  for (auto _ : state) {
    DSDN_TRACE_SPAN("bench.span");
    benchmark::DoNotOptimize(state.iterations());
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer::global().enable(1 << 10);
  for (auto _ : state) {
    DSDN_TRACE_SPAN("bench.span");
    benchmark::DoNotOptimize(state.iterations());
  }
  obs::Tracer::global().disable();
  obs::Tracer::global().clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_Solve_Abilene(benchmark::State& state) {
  const auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  te::Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(t, tm));
  }
}
BENCHMARK(BM_Solve_Abilene);

void BM_Solve_B4(benchmark::State& state) {
  te::Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(b4(), b4_tm()));
  }
}
BENCHMARK(BM_Solve_B4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
