// Batched dataplane throughput under live reprogramming (§3.2).
//
// Phase 1 -- throughput: gravity-model packets stream through one
// BatchPipeline core on a quiesced fabric; reports packets/s and the
// per-batch latency distribution (kBatchSize packets per timed batch).
// Target: >= 1M packets/s single-core at B4 scale.
//
// Phase 2 -- churn: forwarding cores keep draining packet bursts from
// RCU FIB snapshots while the main thread cuts and repairs fibers
// through the full control plane (NSU floods, TE recompute, FIB
// reprogram, epoch publish). Loss is metered per reprogram window from
// the pipelines' counters; after the last event a quiesced packet-score
// sweep must come back clean (no loops, no unknown labels, no dead-link
// drops) -- the torn-epoch / stale-FIB invariant at packet level.
//
// Flags: --topo=b4|abilene  --seconds=<phase-1 duration>
//        --cores=<forwarding threads in phase 2>  --churn=<cut+repair pairs>
// Artifact: BENCH_dataplane_pps.json (DSDN_BENCH_JSON=<dir>).

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "dataplane/pipeline.hpp"
#include "sim/convergence.hpp"
#include "sim/emulation.hpp"
#include "sim/flow_eval.hpp"
#include "sim/packet_score.hpp"
#include "util/rng.hpp"

using namespace dsdn;
using Clock = std::chrono::steady_clock;

namespace {

// Packet specs sampled from the demand matrix, rate-weighted -- the same
// sampling packet_score uses, pre-generated so the measured loop does no
// RNG work.
std::vector<dataplane::PacketSpec> make_pool(const sim::DsdnEmulation& emu,
                                             std::size_t n,
                                             std::uint64_t seed) {
  const auto& demands = emu.demands().demands();
  std::vector<double> weights;
  weights.reserve(demands.size());
  for (const auto& d : demands)
    weights.push_back(d.src != d.dst && d.rate_gbps > 0 ? d.rate_gbps : 0.0);

  const int ttl = static_cast<int>(4 * emu.network().num_nodes() + 16);
  util::Rng rng(util::splitmix64(seed));
  std::vector<dataplane::PacketSpec> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& d = demands[rng.weighted_pick(weights)];
    dataplane::PacketSpec s;
    s.dst_ip = emu.address_of(d.dst);
    s.priority = d.priority;
    s.entropy = rng.engine()();
    s.ttl = ttl;
    s.ingress = d.src;
    pool.push_back(s);
  }
  return pool;
}

struct PipelineTotals {
  std::uint64_t packets = 0;
  std::uint64_t dropped = 0;
  std::uint64_t loops = 0;
  std::uint64_t unknown = 0;
  std::uint64_t frr = 0;
  std::uint64_t slow = 0;
};

PipelineTotals sum_stats(
    const std::vector<std::unique_ptr<dataplane::BatchPipeline>>& pipes) {
  PipelineTotals t;
  for (const auto& p : pipes) {
    const dataplane::PipelineStats s = p->stats();
    t.packets += s.packets;
    t.dropped += s.dropped;
    t.loops += s.by_outcome[static_cast<std::size_t>(
        dataplane::ForwardOutcome::kDroppedLoop)];
    t.unknown += s.by_outcome[static_cast<std::size_t>(
        dataplane::ForwardOutcome::kDroppedUnknownLabel)];
    t.frr += s.frr_activations;
    t.slow += s.slow_path_packets;
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topo_name = "b4";
  double seconds = bench::full_scale() ? 5.0 : 2.0;
  std::size_t cores = 2;
  std::size_t churn_pairs = bench::full_scale() ? 6 : 3;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--topo=", 7) == 0) topo_name = a + 7;
    else if (std::strncmp(a, "--seconds=", 10) == 0) seconds = std::atof(a + 10);
    else if (std::strncmp(a, "--cores=", 8) == 0)
      cores = static_cast<std::size_t>(std::atoi(a + 8));
    else if (std::strncmp(a, "--churn=", 8) == 0)
      churn_pairs = static_cast<std::size_t>(std::atoi(a + 8));
    else {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return 2;
    }
  }
  if (cores == 0) cores = 1;

  bench::banner("Batched dataplane: packets/s over RCU FIB snapshots");
  bench::Workload w;
  if (topo_name == "abilene") {
    w.topo = topo::make_abilene();
    traffic::GravityParams gp;
    gp.pair_fraction = 1.0;
    gp.seed = 0xAB;
    w.tm = traffic::generate_gravity(w.topo, gp).aggregated();
  } else {
    w = bench::b4_workload();
  }
  bench::print_workload(w);

  bench::BenchRun run("dataplane_pps");
  run.workload(w);
  run.out().param("topo", topo_name);
  run.out().param("cores", static_cast<std::uint64_t>(cores));
  run.out().param("churn_pairs", static_cast<std::uint64_t>(churn_pairs));
  run.out().param("batch_size",
                  static_cast<std::uint64_t>(dataplane::kBatchSize));

  sim::DsdnEmulation emu(w.topo, w.tm);
  emu.enable_fib_snapshots(cores);
  emu.bootstrap();
  dataplane::SnapshotHub* hub = emu.fib_hub();

  const std::size_t pool_size = 1 << 15;
  const auto pool = make_pool(emu, pool_size, 0xDA7A);

  // ---- Phase 1: single-core throughput on the quiesced fabric ----
  dataplane::BatchPipeline pipe(emu.network(), hub, {});
  std::vector<dataplane::PacketVerdict> verdicts;
  metrics::EmpiricalDistribution batch_ns;
  std::uint64_t phase1_packets = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < seconds) {
    for (std::size_t off = 0; off + dataplane::kBatchSize <= pool.size();
         off += dataplane::kBatchSize) {
      const auto b0 = Clock::now();
      pipe.process(std::span(pool).subspan(off, dataplane::kBatchSize),
                   verdicts);
      const auto b1 = Clock::now();
      batch_ns.add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(b1 - b0)
              .count()));
      phase1_packets += dataplane::kBatchSize;
    }
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  }
  const dataplane::PipelineStats p1 = pipe.stats();
  const double pps = static_cast<double>(phase1_packets) / elapsed;
  std::printf("phase 1: %.2fM packets/s single-core (%.1fs, %llu packets, "
              "%.1f%% delivered, %llu slow-path)\n",
              pps / 1e6, elapsed,
              static_cast<unsigned long long>(phase1_packets),
              100.0 * static_cast<double>(p1.delivered) /
                  static_cast<double>(p1.packets),
              static_cast<unsigned long long>(p1.slow_path_packets));
  std::printf("  per-batch (%zu pkts): p50=%.0fns p99=%.0fns\n",
              dataplane::kBatchSize, batch_ns.percentile(50),
              batch_ns.percentile(99));

  run.out().metric("pps_single_core", pps);
  run.out().metric("batch_ns_p50", batch_ns.percentile(50));
  run.out().metric("batch_ns_p99", batch_ns.percentile(99));
  run.out().metric("phase1_delivered_fraction",
                   static_cast<double>(p1.delivered) /
                       static_cast<double>(p1.packets));
  run.out().series("batch_ns", batch_ns);

  // ---- Phase 2: forwarding cores vs control-plane churn ----
  const auto fibers =
      sim::pick_failure_fibers(emu.network(), churn_pairs, 0xC0FFEE);
  std::vector<std::unique_ptr<dataplane::BatchPipeline>> pipes;
  for (std::size_t c = 0; c < cores; ++c) {
    dataplane::PipelineOptions po;
    po.core = c;
    pipes.push_back(std::make_unique<dataplane::BatchPipeline>(
        emu.network(), hub, po));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    threads.emplace_back([&, c] {
      std::vector<dataplane::PacketVerdict> out;
      while (!stop.load(std::memory_order_relaxed)) {
        pipes[c]->process(pool, out);
      }
    });
  }

  const std::uint64_t epoch_before_churn = hub->epoch();
  metrics::EmpiricalDistribution window_loss;
  metrics::EmpiricalDistribution window_loss_analytic;
  metrics::EmpiricalDistribution window_loss_no_frr;
  // Rate-weighted mean loss under the flow-granularity model the Fig 10 /
  // Fig 19 harnesses report: the pre-event installed routing evaluated on
  // the post-event topology, FRR bypasses spliced, proportional (non-QoS)
  // drops -- the analytic counterpart of the measured reprogram window.
  // Returns {with FRR bypasses, without} -- the flow model's lower and
  // upper bounds on window loss; the measured transient sits between.
  const auto analytic_window_loss = [&](const sim::InstalledRouting& stale) {
    std::vector<topo::LinkId> down;
    for (const topo::Link& l : emu.network().links()) {
      if (!l.up) down.push_back(l.id);
    }
    const auto bypasses = dataplane::BypassPlan::compute_for_links(
        emu.network(), dataplane::BypassStrategy::kCapacityAware, down);
    sim::LossOptions lo;
    lo.strict_priority = false;  // FRR-window model (Appendix C)
    const auto weighted = [&](const sim::LossReport& report) {
      double lost = 0.0, offered = 0.0;
      const auto& demands = emu.demands().demands();
      for (std::size_t i = 0; i < demands.size(); ++i) {
        lost += demands[i].rate_gbps * report.loss[i];
        offered += demands[i].rate_gbps;
      }
      return offered > 0 ? lost / offered : 0.0;
    };
    const double with_frr = weighted(
        sim::evaluate_loss(emu.network(), emu.demands(), stale, &bypasses,
                           lo));
    const double without_frr = weighted(
        sim::evaluate_loss(emu.network(), emu.demands(), stale, nullptr, lo));
    return std::pair<double, double>{with_frr, without_frr};
  };
  const auto churn_window = [&](const char* what, topo::LinkId fiber,
                                bool fail) {
    const auto stale = sim::InstalledRouting::from_dataplane(
        emu.demands(), emu, &emu.network());
    const PipelineTotals before = sum_stats(pipes);
    if (fail) emu.fail_fiber(fiber);
    else emu.repair_fiber(fiber);
    const PipelineTotals after = sum_stats(pipes);
    const auto [analytic, analytic_no_frr] = analytic_window_loss(stale);
    const std::uint64_t pkts = after.packets - before.packets;
    const std::uint64_t drops = after.dropped - before.dropped;
    const double loss =
        pkts ? static_cast<double>(drops) / static_cast<double>(pkts) : 0.0;
    window_loss.add(loss);
    window_loss_analytic.add(analytic);
    window_loss_no_frr.add(analytic_no_frr);
    std::printf("  %-7s fiber %-4u: %8llu pkts in window, loss %.4f%% "
                "(analytic %.4f%%, no-FRR %.4f%%), frr +%llu\n",
                what, fiber, static_cast<unsigned long long>(pkts),
                100.0 * loss, 100.0 * analytic, 100.0 * analytic_no_frr,
                static_cast<unsigned long long>(after.frr - before.frr));
  };

  std::printf("\nphase 2: %zu forwarding cores during %zu cut/repair "
              "cycles\n", cores, fibers.size());
  for (const topo::LinkId f : fibers) {
    churn_window("cut", f, true);
    churn_window("repair", f, false);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  const PipelineTotals total = sum_stats(pipes);
  const std::uint64_t epochs = hub->epoch() - epoch_before_churn;

  // Quiesced packet-level invariant: every sampled packet delivers (or
  // has no ingress route); loops / unknown labels / dead-link walks are
  // forwarding bugs. Loop and unknown-label drops are violations even
  // mid-churn: stale routes must die at the dead link (FRR), never cycle.
  sim::PacketScoreOptions so;
  so.packets = 4096;
  so.seed = 0x5C0BE;
  const sim::PacketScoreReport score = sim::score_packets(emu, so);
  std::size_t violations = score.hard_drops + total.loops + total.unknown;

  std::printf("\nchurn total: %llu packets forwarded, %llu epochs "
              "published, max window loss %.4f%% (analytic %.4f%%)\n",
              static_cast<unsigned long long>(total.packets - p1.packets),
              static_cast<unsigned long long>(epochs),
              100.0 * window_loss.max(), 100.0 * window_loss_analytic.max());
  std::printf("quiesced score: %zu/%zu delivered, %zu hard drops; "
              "run loops=%llu unknown-labels=%llu -> %zu violations\n",
              score.delivered, score.packets, score.hard_drops,
              static_cast<unsigned long long>(total.loops),
              static_cast<unsigned long long>(total.unknown), violations);

  run.out().metric("churn_packets",
                   static_cast<double>(total.packets - p1.packets));
  run.out().metric("epochs_published", static_cast<double>(epochs));
  run.out().metric("window_loss_max", window_loss.max());
  run.out().metric("window_loss_mean", window_loss.mean());
  run.out().metric("window_loss_analytic_max", window_loss_analytic.max());
  run.out().metric("window_loss_analytic_mean", window_loss_analytic.mean());
  run.out().metric("window_loss_no_frr_max", window_loss_no_frr.max());
  run.out().metric("slow_path_packets", static_cast<double>(total.slow));
  run.out().metric("violations", static_cast<double>(violations));
  run.out().series("window_loss", window_loss);
  run.out().series("window_loss_analytic", window_loss_analytic);

  if (violations) {
    std::fprintf(stderr, "[bench] FAIL: %zu invariant violations\n",
                 violations);
    for (const std::string& v : score.violations)
      std::fprintf(stderr, "  ! %s\n", v.c_str());
    return 1;
  }
  return 0;
}
