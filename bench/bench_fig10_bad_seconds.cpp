// Figure 10: distribution of per-event bad seconds for cSDN, dSDN, and
// the omniscient instantly-converging baseline, per priority class.
//
// Expected shape: omniscient ~0 at high priority and small at low
// priority (pure capacity shortfall); dSDN 10-100x below cSDN everywhere;
// impact grows toward lower priority classes for both schemes.

#include "bench_common.hpp"
#include "sim/transient.hpp"

using namespace dsdn;

int main() {
  bench::banner(
      "Figure 10: bad seconds per event, by scheme and priority class");

  const auto w = bench::b4_workload(/*target_util=*/1.1);
  bench::print_workload(w);

  sim::TransientConfig base;
  base.failures.days = bench::full_scale() ? 1000 : 150;
  base.failures.mttf_days = 120;
  base.failures.seed = 0xF10;
  base.seed = 0x510;

  sim::SolutionProvider provider(&w.tm, base.solver_options);

  std::printf("simulating %.0f days of failure/repair events per scheme...\n\n",
              base.failures.days);

  for (const sim::Scheme scheme :
       {sim::Scheme::kOmniscient, sim::Scheme::kCsdn, sim::Scheme::kDsdn}) {
    auto cfg = base;
    cfg.scheme = scheme;
    sim::TransientSimulator simulator(w.topo, w.tm, cfg, &provider);
    const auto result = simulator.run();
    std::printf("%-11s (%zu failure events)\n", sim::scheme_name(scheme),
                result.bad_seconds_distribution(metrics::PriorityClass::kHigh)
                    .size());
    for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
      const auto cls = static_cast<metrics::PriorityClass>(c);
      const auto d = result.bad_seconds_distribution(cls);
      std::printf("  %-15s %s\n", metrics::priority_name(cls),
                  bench::dist_row_plain(d).c_str());
    }
    std::printf("\n");
  }
  std::printf("TE solver runs: %zu (cache hits: %zu, shared across schemes)\n",
              provider.solves(), provider.hits());

  // ---- Lossy-flood mode: dSDN bad seconds under injected NSU loss ----
  // Per-hop flood loss with bounded retransmit backoff stretches Tprop,
  // which shows up as extra bad seconds; deltas vs the lossless dSDN row
  // above quantify how much the paper's Fig 10 story depends on a
  // perfectly reliable flooding plane.
  std::printf("\n--- dSDN bad seconds under flood loss ---\n");
  for (const double loss : {0.01, 0.05, 0.10}) {
    auto cfg = base;
    cfg.scheme = sim::Scheme::kDsdn;
    cfg.flood.loss_prob = loss;
    sim::TransientSimulator simulator(w.topo, w.tm, cfg, &provider);
    const auto result = simulator.run();
    std::printf("loss=%2.0f%%\n", loss * 100);
    for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
      const auto cls = static_cast<metrics::PriorityClass>(c);
      std::printf("  %-15s %s\n", metrics::priority_name(cls),
                  bench::dist_row_plain(result.bad_seconds_distribution(cls))
                      .c_str());
    }
  }
  return 0;
}
