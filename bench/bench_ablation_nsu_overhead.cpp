// Ablation: NSU size and flooding overhead (§5.1.1 footnote 3).
//
// NSUs are larger than IS-IS LSPs because they carry demand information.
// The paper's worst case: a 200-node network with 5 traffic classes and
// all-pairs demand adds ~4 KB per router -- under 4 us of transmission
// time on a 10 Gbps link. We measure the *real wire encoding* across our
// topologies, worst-case (all-pairs) and realistic (gravity) demand sets,
// plus the flooding message complexity per event from the functional
// emulation.

#include "bench_common.hpp"
#include "core/local_state.hpp"
#include "core/wire.hpp"
#include "sim/convergence.hpp"
#include "sim/emulation.hpp"

using namespace dsdn;

namespace {

std::size_t worst_case_nsu_bytes(const topo::Topology& topo,
                                 topo::NodeId self, int classes_per_pair) {
  // All-pairs demand from `self`, every class populated.
  traffic::TrafficMatrix tm;
  for (topo::NodeId d = 0; d < topo.num_nodes(); ++d) {
    if (d == self) continue;
    for (int c = 0; c < classes_per_pair; ++c) {
      tm.add({self, d,
              static_cast<metrics::PriorityClass>(
                  c % metrics::kNumPriorityClasses),
              1.0});
    }
  }
  tm = tm.aggregated();
  const auto prefixes = topo::assign_router_prefixes(topo);
  core::SimTelemetry telemetry(&topo, &tm, prefixes);
  core::LocalState ls(self);
  return core::serialize_nsu(ls.snapshot(telemetry)).size();
}

}  // namespace

int main() {
  bench::banner("Ablation: NSU wire size and flooding overhead");

  struct Entry {
    const char* name;
    topo::Topology topo;
  };
  std::vector<Entry> entries;
  for (const auto& z : topo::zoo_catalog())
    entries.push_back({z.name, z.factory()});
  entries.push_back({"B4 (synthetic)", topo::make_b4_like()});
  entries.push_back({"B2 (synthetic)", topo::make_b2_like()});

  std::printf("worst case: all-pairs demand, %d-class encoding "
              "(paper footnote 3: 200 nodes / 5 classes ~ 4 KB, <4 us at "
              "10 Gbps)\n\n",
              metrics::kNumPriorityClasses);
  std::printf("%-16s %6s %14s %16s %18s\n", "topology", "nodes",
              "NSU bytes", "tx @10Gbps", "tx @100Gbps");
  for (const auto& e : entries) {
    // The busiest router: highest degree (most link adverts).
    topo::NodeId busiest = 0;
    for (topo::NodeId n = 0; n < e.topo.num_nodes(); ++n) {
      if (e.topo.node(n).out_links.size() >
          e.topo.node(busiest).out_links.size()) {
        busiest = n;
      }
    }
    const std::size_t bytes = worst_case_nsu_bytes(
        e.topo, busiest, metrics::kNumPriorityClasses);
    std::printf("%-16s %6zu %11.1f KB %13.1f us %15.2f us\n", e.name,
                e.topo.num_nodes(), static_cast<double>(bytes) / 1024.0,
                static_cast<double>(bytes) * 8.0 / 10e9 * 1e6,
                static_cast<double>(bytes) * 8.0 / 100e9 * 1e6);
  }

  // Flooding message complexity: from the functional emulation, messages
  // per single-fiber event (each NSU crosses each link at most once).
  std::printf("\nflooding cost per failure event (functional emulation, "
              "real controllers):\n");
  {
    auto topo = topo::make_b4_like();
    traffic::GravityParams gp;
    gp.pair_fraction = 0.1;
    auto tm = traffic::generate_gravity(topo, gp);
    sim::DsdnEmulation wan(topo, tm);
    wan.bootstrap();
    const auto fibers = sim::pick_failure_fibers(wan.network(), 3, 0xAB2);
    for (topo::LinkId fiber : fibers) {
      const std::size_t before = wan.messages_delivered();
      wan.fail_fiber(fiber);
      const std::size_t per_event = wan.messages_delivered() - before;
      std::printf("  event: %zu NSU deliveries (%zu directed links in "
                  "the network; 2 origins => bound %zu)\n",
                  per_event, wan.network().num_links(),
                  2 * wan.network().num_links());
      wan.repair_fiber(fiber);
    }
  }
  std::printf("\nshape check: NSU sizes stay KB-scale even at B2 size -- "
              "demand info adds microseconds of transmission per 10G hop, "
              "negligible against propagation delay.\n");
  return 0;
}
