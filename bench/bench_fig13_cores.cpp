// Figure 13: Tcomp for the B2 workload as a function of the number of
// cores running TE, for a datacenter server (2.8 GHz cores) vs an Arista
// router (1.9 GHz cores).
//
// Methodology: the real solver is run at every thread count this host
// has; beyond that, the curve is extrapolated with Amdahl's law using the
// *measured* serial fraction (the solver's serialized flow-assignment
// step -- the same step the paper identifies as the flattening cause).
// Router times are server times scaled by the 1.9/2.8 core-speed ratio.
//
// Expected shape: improvement up to ~5 cores, then flat; the router curve
// sits ~40% above the server curve at every core count.

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_common.hpp"

#include "core/introspection.hpp"
#include "metrics/calibration.hpp"
#include "te/parallel_solver.hpp"
#include "te/solver.hpp"

using namespace dsdn;

int main() {
  bench::banner("Figure 13: Tcomp vs number of cores (B2)");

  bench::BenchRun run("fig13_cores");
  const auto w = bench::b2_workload();
  bench::print_workload(w);
  run.workload(w);

  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t runs = bench::full_scale() ? 5 : 3;
  run.out().param("hw_threads", hw);
  run.out().param("runs", runs);

  // Per-call dispatch overhead of parallel_for on a tiny index space --
  // the persistent pool's replacement for the seed's per-call thread
  // spawn+join, which polluted exactly the small-n rounds that dominate
  // late waterfill iterations.
  {
    te::ThreadPool pool(8);
    std::atomic<std::size_t> sink{0};
    constexpr int kReps = 2000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      pool.parallel_for(8, [&](std::size_t i) {
        sink.fetch_add(i, std::memory_order_relaxed);
      });
    }
    const double per_call =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() /
        kReps;
    std::printf("parallel_for dispatch overhead (n=8, 8-thread pool): "
                "%.1f us/call\n\n",
                per_call * 1e6);
    run.out().metric("dispatch_overhead_us", per_call * 1e6);
  }

  // Cold-solve backend comparison (ROADMAP item 2): the legacy
  // one-Dijkstra-per-demand waterfill vs the SoA batch solver, both
  // single-threaded and cacheless -- the convergence floor the warm
  // path's 100x win (PR 4) left behind.
  {
    auto median_of = [&](te::SolverBackend backend) {
      te::SolverOptions opt;
      opt.backend = backend;
      te::Solver solver(opt);
      std::vector<double> times;
      for (std::size_t r = 0; r < runs; ++r) {
        te::SolveStats s;
        solver.solve(w.topo, w.tm, &s);
        times.push_back(s.wall_time_s);
      }
      std::sort(times.begin(), times.end());
      return times[times.size() / 2];
    };
    const double legacy_med = median_of(te::SolverBackend::kLegacy);
    const double batch_med = median_of(te::SolverBackend::kBatch);
    std::printf("cold solve median (1 thread, %zu runs): legacy %s, "
                "batch %s -- %.1fx\n\n",
                runs, util::format_duration(legacy_med).c_str(),
                util::format_duration(batch_med).c_str(),
                legacy_med / batch_med);
    run.out().metric("cold_median_legacy_s", legacy_med);
    run.out().metric("cold_median_batch_s", batch_med);
    run.out().metric("cold_speedup", legacy_med / batch_med);
  }

  // Measure at each available thread count, sharing one persistent pool
  // per thread count across the repeat runs (workers spawn once). The
  // solver here is the default (batch) backend: this is the Fig 13
  // core-scaling curve after the SoA rework.
  std::vector<std::pair<std::size_t, double>> measured;
  double alloc_share = 0.0;  // timer-based share of the serialized step
  for (std::size_t threads = 1; threads <= hw; ++threads) {
    te::ThreadPool pool(threads);
    te::SolverOptions opt;
    opt.pool = &pool;
    te::Solver solver(opt);
    double best = 1e18;
    te::SolveStats stats;
    for (std::size_t r = 0; r < runs; ++r) {
      te::SolveStats s;
      solver.solve(w.topo, w.tm, &s);
      if (s.wall_time_s < best) {
        best = s.wall_time_s;
        stats = s;
      }
    }
    measured.emplace_back(threads, best);
    if (threads == 1) {
      alloc_share = (stats.wall_time_s - stats.path_search_time_s) /
                    stats.wall_time_s;
    }
  }

  // The honest-scaling checkpoint: one solve on an 8-thread pool (the
  // acceptance point tracked in EXPERIMENTS.md), with the pool's own
  // scheduling counters. Oversubscribed when the host has fewer cores.
  {
    te::ThreadPool pool(8);
    te::SolverOptions opt;
    opt.pool = &pool;
    te::Solver solver(opt);
    double best = 1e18;
    for (std::size_t r = 0; r < runs; ++r) {
      te::SolveStats s;
      solver.solve(w.topo, w.tm, &s);
      best = std::min(best, s.wall_time_s);
    }
    std::printf("8-thread solve%s: %s best-of-%zu\n",
                hw < 8 ? " (oversubscribed)" : "",
                util::format_duration(best).c_str(), runs);
    std::printf("%s\n", core::render_pool_stats(pool.stats()).c_str());
    run.out().metric("tcomp_8thread_best_s", best);
  }

  // Fit Amdahl T(n) = serial + parallel/n to the *measured* points: the
  // effective serial share includes the serialized allocation step plus
  // per-round dispatch and imbalance overheads -- exactly what makes
  // the paper's curve flatten around 5 cores. With fewer than two
  // measured thread counts (single-core hosts) the fit is singular; fall
  // back to the timer-based split of the 1-core solve.
  double serial_time, parallel_time;
  bool fitted = false;
  if (measured.size() >= 2) {
    double s11 = 0, s1x = 0, sx1 = 0, sxx = 0, sy = 0, sxy = 0;
    for (const auto& [n, t] : measured) {
      const double x = 1.0 / static_cast<double>(n);
      s11 += 1;
      s1x += x;
      sx1 += x;
      sxx += x * x;
      sy += t;
      sxy += x * t;
    }
    const double det = s11 * sxx - s1x * sx1;
    if (std::abs(det) > 1e-12) {
      serial_time = (sxx * sy - s1x * sxy) / det;
      parallel_time = (s11 * sxy - sx1 * sy) / det;
      serial_time = std::max(serial_time, 0.0);
      fitted = std::isfinite(serial_time) && std::isfinite(parallel_time);
    }
  }
  if (!fitted) {
    const double t1 = measured.front().second;
    serial_time = alloc_share * t1;
    parallel_time = t1 - serial_time;
  }

  std::printf("serialized flow-assignment step (timers): %.0f%% of the "
              "1-core solve;\neffective serial share %s: %.0f%%\n\n",
              100.0 * alloc_share,
              fitted ? "fitted from measured scaling"
                     : "from timers (too few cores to fit)",
              100.0 * serial_time / (serial_time + parallel_time));
  std::printf("%6s  %18s  %18s\n", "cores", "Datacenter Server",
              "Arista Router");
  for (std::size_t cores = 1; cores <= 16; ++cores) {
    double server;
    if (cores <= hw) {
      server = measured[cores - 1].second;
    } else {
      // Amdahl extrapolation from the measured split.
      server = serial_time + parallel_time / static_cast<double>(cores);
    }
    const double router = server / metrics::kRouterCpuSpeedRatio;
    std::printf("%6zu  %18s  %18s%s\n", cores,
                util::format_duration(server).c_str(),
                util::format_duration(router).c_str(),
                cores <= hw ? "  (measured)" : "  (Amdahl)");
  }

  // Where does adding a core stop paying? First core count whose
  // marginal improvement drops under 5%.
  std::size_t flat_at = 16;
  for (std::size_t cores = 2; cores <= 16; ++cores) {
    const double prev =
        serial_time + parallel_time / static_cast<double>(cores - 1);
    const double cur = serial_time + parallel_time / static_cast<double>(cores);
    if ((prev - cur) / prev < 0.05) {
      flat_at = cores;
      break;
    }
  }
  std::printf(
      "\nshape checks: marginal gain per extra core drops under 5%% at "
      "%zu cores (paper: flattens ~5); router/server ratio %.2fx at every "
      "point (paper: faster cores improve Tcomp up to ~41%%)\n",
      flat_at, 1.0 / metrics::kRouterCpuSpeedRatio);

  for (const auto& [n, t] : measured) {
    run.out().metric("tcomp_server_s." + std::to_string(n) + "core", t);
  }
  run.out().metric("serial_share",
                   serial_time / (serial_time + parallel_time));
  run.out().metric("flattens_at_cores", static_cast<double>(flat_at));
  return 0;
}
