// Figure 19 (Appendix B): distribution of transit-entry and encap-entry
// programming times in cSDN, aggregated over all routers and for the
// most-loaded (slowest) router.
//
// Expected shape: per-router medians vary ~10x across routers; each
// router's p99 sits 4-11x above its median; the slowest router's tail
// reaches tens of seconds -- which is why two-phase programming of a path
// (gated by its slowest transit router) gives cSDN its long Tprog.

#include "bench_common.hpp"
#include "csdn/programming.hpp"
#include "te/solver.hpp"

using namespace dsdn;

int main() {
  bench::banner("Figure 19: cSDN programming time distributions");

  const auto w = bench::b4_workload();
  metrics::CsdnCalibration calib;
  util::Rng boot(0x19);
  metrics::ProgrammingLatencyModel model(calib, w.topo.num_nodes(), boot);
  util::Rng rng(0x519);

  const std::size_t events_per_router = bench::full_scale() ? 20000 : 4000;
  metrics::EmpiricalDistribution agg_transit, agg_encap;
  metrics::EmpiricalDistribution max_transit, max_encap;
  const std::size_t slowest = model.slowest_router();
  for (std::size_t r = 0; r < w.topo.num_nodes(); ++r) {
    for (std::size_t i = 0; i < events_per_router / w.topo.num_nodes() + 1;
         ++i) {
      agg_transit.add(model.sample_transit(r, rng));
      agg_encap.add(model.sample_encap(r, rng));
    }
  }
  for (std::size_t i = 0; i < events_per_router; ++i) {
    max_transit.add(model.sample_transit(slowest, rng));
    max_encap.add(model.sample_encap(slowest, rng));
  }

  std::printf("%-18s %s\n", "Aggregate Transit",
              bench::dist_row(agg_transit).c_str());
  std::printf("%-18s %s\n", "Aggregate Encap",
              bench::dist_row(agg_encap).c_str());
  std::printf("%-18s %s\n", "Max Transit",
              bench::dist_row(max_transit).c_str());
  std::printf("%-18s %s\n\n", "Max Encap",
              bench::dist_row(max_encap).c_str());

  std::printf("tail stretch (p99/p50): aggregate transit %.1fx, "
              "slowest router transit %.1fx (paper: 4x-11x)\n",
              agg_transit.percentile(99) / agg_transit.median(),
              max_transit.percentile(99) / max_transit.median());
  std::printf("slowest/aggregate transit median ratio: %.1fx "
              "(paper: ~10x spread across routers)\n\n",
              max_transit.median() / agg_transit.median());

  // Consequence for whole-path programming: sample two-phase times over
  // the workload's real TE paths.
  const auto solution = te::Solver().solve(w.topo, w.tm);
  metrics::EmpiricalDistribution path_prog;
  for (const auto& a : solution.allocations) {
    for (const auto& wp : a.paths) {
      path_prog.add(
          csdn::two_phase_program(w.topo, wp.path, model, rng).enabled_s);
    }
  }
  std::printf("two-phase per-path programming over %zu real TE paths:\n  %s\n",
              path_prog.size(), bench::dist_row(path_prog).c_str());
  std::printf("network-wide Tprog is gated by the slowest path: p98 = %s\n",
              util::format_duration(path_prog.percentile(98)).c_str());
  return 0;
}
