// Scale proof for the hierarchical plane runtime (ROADMAP item 1).
//
// Phase 1 -- solve scaling: flat te::Solver vs the two-level hierarchical
// solve on B2-growth-extrapolated topologies (1k-10k nodes). GATES at the
// largest (>= 1k node) point: hierarchical solve >= 5x faster than flat
// with a measured throughput gap <= 10% (check_optimality_gap).
//
// Phase 2 -- blast radius: K=4 planes; (a) deterministically fail/restore
// each plane and GATE exposed fraction < 1/K + slack per failure; (b) a
// seeded scenario swarm (plane-local cuts, cross-plane SRLGs, plane
// crash/rebalance/restore) that must come back with zero invariant
// violations. Quick mode runs a smoke-size swarm; DSDN_BENCH_SCALE=full
// runs the 100+-seed swarm the acceptance bar asks for.
//
// Exit status is the gate: non-zero when any bound is missed, so the CI
// artifact leg doubles as a regression tripwire.

#include <chrono>
#include <cmath>
#include <thread>

#include "bench_common.hpp"
#include "hier/scenario.hpp"
#include "hier/solver.hpp"
#include "te/parallel_solver.hpp"

using namespace dsdn;

namespace {

struct ScaleRow {
  std::string label;
  std::size_t nodes = 0;
  std::size_t demands = 0;
  std::size_t regions = 0;
  double flat_s = 0.0;
  double hier_s = 0.0;
  double build_s = 0.0;
  double speedup = 0.0;
  double gap = 0.0;
  bool gap_ok = true;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::banner("Hierarchical scale proof: two-level solve + plane blast radius");
  bench::BenchRun run("hier_scale");

  const bool full = bench::full_scale();
  std::size_t threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 4;
  te::ThreadPool pool(threads);

  // ---- Phase 1: flat vs hierarchical solve on the growth curve --------
  const std::size_t points = full ? 4 : 2;
  const double max_scale = full ? 10.0 : 2.0;
  const auto snaps = topo::b2_growth_extrapolated(points, max_scale);

  std::printf("phase 1: flat vs hierarchical solve (%zu threads)\n\n",
              threads);
  std::printf("%8s %7s %8s %8s %10s %10s %10s %9s %7s\n", "snap", "nodes",
              "demands", "regions", "flat", "hier", "build", "speedup",
              "gap");

  std::vector<ScaleRow> rows;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const auto& snap = snaps[i];
    const double scale =
        points > 1 ? std::pow(max_scale, static_cast<double>(i) /
                                             static_cast<double>(points - 1))
                   : 1.0;
    traffic::GravityParams gp;
    // Shrink the pair fraction with scale so the demand count stays
    // bounded while node count grows (the Fig 16 regime).
    gp.pair_fraction = (full ? 0.02 : 0.01) / scale;
    gp.target_max_utilization = 0.6;
    gp.seed = 0xB2B2;
    const auto tm = traffic::generate_gravity(snap.topo, gp).aggregated();

    // Best-of-2 cold solves on each side: single-shot wall times on a
    // shared machine are too noisy to gate a ratio on.
    te::SolverOptions flat_options;
    flat_options.pool = &pool;
    te::Solution flat;
    double flat_s = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      te::SolveStats flat_stats;
      flat = te::Solver(flat_options).solve(snap.topo, tm, &flat_stats);
      flat_s = rep == 0 ? flat_stats.wall_time_s
                        : std::min(flat_s, flat_stats.wall_time_s);
    }

    const double build_start = now_s();
    const auto hierarchy = hier::build_hierarchy(snap.topo);
    const double build_s = now_s() - build_start;

    hier::HierOptions hier_options;
    hier_options.pool = &pool;
    hier::HierSolveStats hier_stats;
    te::Solution hsol;
    double hier_s = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      hsol = hier::solve_hierarchical(snap.topo, tm, hierarchy, hier_options,
                                      &hier_stats);
      hier_s = rep == 0 ? hier_stats.wall_time_s
                        : std::min(hier_s, hier_stats.wall_time_s);
    }

    hier::GapOptions gap_options;
    gap_options.max_gap_fraction = 0.10;
    const auto gap =
        hier::check_optimality_gap(snap.topo, tm, hsol, flat, gap_options);

    ScaleRow row;
    row.label = snap.label;
    row.nodes = snap.topo.num_nodes();
    row.demands = tm.size();
    row.regions = hier_stats.n_regions;
    row.flat_s = flat_s;
    row.hier_s = hier_s;
    row.build_s = build_s;
    row.speedup = row.hier_s > 0 ? row.flat_s / row.hier_s : 0.0;
    row.gap = gap.gap_fraction;
    row.gap_ok = gap.ok();
    rows.push_back(row);

    std::printf("%8s %7zu %8zu %8zu %10s %10s %10s %8.1fx %6.1f%%\n",
                row.label.c_str(), row.nodes, row.demands, row.regions,
                util::format_duration(row.flat_s).c_str(),
                util::format_duration(row.hier_s).c_str(),
                util::format_duration(row.build_s).c_str(), row.speedup,
                100.0 * row.gap);
    std::printf("         breakdown: top %s, regions %s, stitch %s, "
                "%zu logical / %zu segment rows\n",
                util::format_duration(hier_stats.top_solve_s).c_str(),
                util::format_duration(hier_stats.region_solve_s).c_str(),
                util::format_duration(hier_stats.stitch_s).c_str(),
                hier_stats.logical_demands, hier_stats.segment_demands);
    if (!gap.ok()) {
      for (const auto& v : gap.violations)
        std::printf("    gap violation: %s\n", v.c_str());
    }
  }

  // The gate point: the largest snapshot with >= 1000 nodes.
  const ScaleRow* gate = nullptr;
  for (const auto& row : rows) {
    if (row.nodes >= 1000) gate = &row;
  }
  if (gate == nullptr) gate = &rows.back();

  bool pass = true;
  std::printf("\ngate @ %s (%zu nodes): speedup %.1fx (need >= 5x), "
              "gap %.1f%% (need <= 10%%)\n",
              gate->label.c_str(), gate->nodes, gate->speedup,
              100.0 * gate->gap);
  if (gate->nodes < 1000) {
    std::printf("  [FAIL] no >= 1000-node snapshot in the sweep\n");
    pass = false;
  }
  if (gate->speedup < 5.0) {
    std::printf("  [FAIL] hierarchical speedup %.1fx < 5x\n", gate->speedup);
    pass = false;
  }
  if (!gate->gap_ok) {
    std::printf("  [FAIL] optimality-gap harness flagged violations\n");
    pass = false;
  }

  run.out().param("threads", static_cast<std::uint64_t>(threads));
  run.out().param("scale_points", static_cast<std::uint64_t>(rows.size()));
  run.out().param("gate_nodes", static_cast<std::uint64_t>(gate->nodes));
  run.out().param("gate_demands", static_cast<std::uint64_t>(gate->demands));
  run.out().metric("flat_solve_s", gate->flat_s);
  run.out().metric("hier_solve_s", gate->hier_s);
  run.out().metric("hier_build_s", gate->build_s);
  run.out().metric("speedup", gate->speedup);
  run.out().metric("gap_fraction", gate->gap);

  // ---- Phase 2a: deterministic plane-failure blast radius -------------
  const std::size_t kPlanes = 4;
  std::printf("\nphase 2: plane blast radius (K=%zu planes)\n\n", kPlanes);

  const auto base = topo::make_geant();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.4;
  gp.seed = 0xB1A5;
  const auto tm = traffic::generate_gravity(base, gp).aggregated();
  std::printf("base: %zu nodes, %zu links, %zu flows\n", base.num_nodes(),
              base.num_links(), tm.size());

  hier::PlaneRuntimeConfig config;
  config.planes = kPlanes;
  config.score_packets = 256;
  config.pool = &pool;
  hier::PlaneRuntime runtime(base, tm, config);
  runtime.bootstrap();

  metrics::EmpiricalDistribution exposed;
  double exposed_max = 0.0;
  const double bound = 1.0 / static_cast<double>(kPlanes) + 0.05;
  std::printf("\n%8s %14s %12s %14s %12s\n", "victim", "moved flows",
              "exposed", "hard drops", "bound");
  for (std::size_t p = 0; p < kPlanes; ++p) {
    const auto report = runtime.fail_plane(p);
    exposed.add(report.exposed_fraction);
    exposed_max = std::max(exposed_max, report.exposed_fraction);
    std::printf("%8zu %14zu %11.1f%% %14zu %11.1f%%\n", p,
                report.moved_flows, 100.0 * report.exposed_fraction,
                report.score_hard_drops, 100.0 * bound);
    if (report.exposed_fraction >= bound) {
      std::printf("  [FAIL] plane %zu exposed %.1f%% >= bound %.1f%%\n", p,
                  100.0 * report.exposed_fraction, 100.0 * bound);
      pass = false;
    }
    if (report.score_hard_drops != 0) {
      std::printf("  [FAIL] plane %zu rebalance scored hard drops\n", p);
      pass = false;
    }
    runtime.restore_plane(p);
  }

  // ---- Phase 2b: seeded scenario swarm --------------------------------
  const std::size_t n_seeds = full ? 120 : 25;
  hier::PlaneScenarioOptions scenario;
  scenario.planes = kPlanes;
  scenario.n_events = 8;
  scenario.score_packets = full ? 256 : 64;
  // Cold re-solve parity per plane per event is the tier-1 swarm leg's
  // job; here the swarm covers event-space breadth instead.
  scenario.invariants.check_solution_parity = full;

  const auto swarm_base = topo::make_abilene();
  traffic::GravityParams swarm_gp;
  swarm_gp.pair_fraction = 0.5;
  swarm_gp.seed = 0xABE;
  const auto swarm_tm =
      traffic::generate_gravity(swarm_base, swarm_gp).aggregated();

  std::size_t violations = 0, events = 0, rebalances = 0, checks = 0;
  for (std::uint64_t seed = 1; seed <= n_seeds; ++seed) {
    const auto r =
        hier::run_plane_scenario(swarm_base, swarm_tm, scenario, seed);
    violations += r.violations.size();
    events += r.events_applied;
    rebalances += r.rebalances;
    checks += r.invariant_checks;
    if (r.rebalances > 0) {
      exposed.add(r.max_exposed_fraction);
      exposed_max = std::max(exposed_max, r.max_exposed_fraction);
    }
    if (!r.ok()) {
      std::printf("  [FAIL] seed %llu:\n",
                  static_cast<unsigned long long>(seed));
      for (const auto& v : r.violations)
        std::printf("    %s\n", v.c_str());
      pass = false;
    }
  }
  std::printf("\nswarm: %zu seeds, %zu events, %zu rebalances, "
              "%zu invariant checks, %zu violations\n",
              n_seeds, events, rebalances, checks, violations);
  std::printf("exposed fraction: mean %.1f%%, max %.1f%% "
              "(crash bound is 1/alive + slack per event)\n",
              100.0 * exposed.mean(), 100.0 * exposed_max);

  run.out().param("planes", static_cast<std::uint64_t>(kPlanes));
  run.out().param("swarm_seeds", static_cast<std::uint64_t>(n_seeds));
  run.out().metric("swarm_violations", static_cast<double>(violations));
  run.out().metric("swarm_rebalances", static_cast<double>(rebalances));
  run.out().metric("exposed_fraction_mean", exposed.mean());
  run.out().metric("exposed_fraction_max", exposed_max);
  run.out().series("exposed_fraction", exposed);

  std::printf("\n%s: hierarchical solve %s the >= 5x / <= 10%% gate at "
              "%zu nodes; plane failures %s the 1/K containment bar.\n",
              pass ? "PASS" : "FAIL", pass ? "clears" : "misses",
              gate->nodes, pass ? "stay inside" : "break");
  run.out().metric("gates_passed", pass ? 1.0 : 0.0);
  return pass ? 0 : 1;
}
