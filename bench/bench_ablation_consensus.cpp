// Ablation: consensus-free forwarding (§3.1). Why strict source routing
// instead of per-hop destination forwarding?
//
// After a failure, routers converge at different times; until they all
// agree, per-hop forwarding (IS-IS style) can micro-loop or dead-end --
// the distributed-consensus pathology the paper cites. Source routing
// sidesteps it: the headend alone fixes the path, so a stale route at
// worst stops at the dead link (where FRR takes over).
//
// We sweep partial-convergence states on the B4-scale network: for each
// failed fiber and each fraction of already-reconverged routers, walk
// every (src, dst) pair under both forwarding models and classify the
// outcomes.

#include <set>

#include "bench_common.hpp"
#include "isis/per_hop.hpp"
#include "sim/convergence.hpp"
#include "te/dijkstra.hpp"

using namespace dsdn;

int main() {
  bench::banner("Ablation: per-hop forwarding vs source routing during "
                "convergence");

  auto topo = topo::make_b4_like();
  std::printf("network: %zu nodes, %zu links\n\n", topo.num_nodes(),
              topo.num_links());

  const std::size_t n_events = bench::full_scale() ? 12 : 5;
  const auto fibers = sim::pick_failure_fibers(topo, n_events, 0xC0C0);

  std::printf("%-10s | %28s | %28s\n", "", "per-hop forwarding",
              "strict source routing");
  std::printf("%-10s | %9s %9s %8s | %9s %9s %8s\n", "converged", "loops",
              "deadends", "ok", "loops", "dead-link", "ok");

  util::Rng rng(0xC0C1);
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::size_t ph_loops = 0, ph_dead = 0, ph_ok = 0;
    std::size_t sr_loops = 0, sr_deadlink = 0, sr_ok = 0;
    for (const topo::LinkId fiber : fibers) {
      topo::Topology stale_view = topo;  // pre-failure
      topo.set_duplex_up(fiber, false);

      // Which routers have reconverged onto the fresh view?
      std::vector<char> fresh(topo.num_nodes(), 0);
      for (auto& f : fresh) f = rng.bernoulli(frac) ? 1 : 0;

      std::vector<isis::NextHopTable> tables;
      for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
        tables.push_back(
            isis::compute_next_hops(fresh[n] ? topo : stale_view, n));
      }

      // Sample pairs (all-pairs is 10k; sample for speed).
      for (int trial = 0; trial < 600; ++trial) {
        const auto s = static_cast<topo::NodeId>(rng.uniform_int(
            0, static_cast<std::int64_t>(topo.num_nodes()) - 1));
        const auto d = static_cast<topo::NodeId>(rng.uniform_int(
            0, static_cast<std::int64_t>(topo.num_nodes()) - 1));
        if (s == d) continue;

        const auto ph = isis::forward_per_hop(topo, tables, s, d);
        switch (ph.outcome) {
          case isis::PerHopOutcome::kLoop: ++ph_loops; break;
          case isis::PerHopOutcome::kDelivered: ++ph_ok; break;
          default: ++ph_dead; break;
        }

        // Source route from the headend's own view (stale or fresh).
        const auto route =
            te::shortest_path(fresh[s] ? topo : stale_view, s, d);
        if (!route) {
          ++sr_deadlink;
          continue;
        }
        bool looped = false, hit_dead = false;
        std::set<topo::NodeId> seen{s};
        for (topo::LinkId l : route->links) {
          if (!topo.link(l).up) {
            hit_dead = true;
            break;
          }
          if (!seen.insert(topo.link(l).dst).second) {
            looped = true;
            break;
          }
        }
        if (looped) {
          ++sr_loops;
        } else if (hit_dead) {
          ++sr_deadlink;
        } else {
          ++sr_ok;
        }
      }
      topo.set_duplex_up(fiber, true);
    }
    std::printf("%8.0f%% | %9zu %9zu %8zu | %9zu %9zu %8zu\n", frac * 100,
                ph_loops, ph_dead, ph_ok, sr_loops, sr_deadlink, sr_ok);
  }

  std::printf("\nshape check: per-hop forwarding loops at intermediate "
              "convergence fractions and is clean only at 0%%/100%%; "
              "source routing shows zero loops at every fraction -- its "
              "only transient failure is stopping at the dead link, which "
              "FRR repairs (§3.2).\n");
  return 0;
}
