// Appendix A: MPLS sublabel encoding properties across topologies --
// sublabel counts vs the 2k bound, per-router table sizes vs the ~2k^2
// bound (and the many-tens-of-thousands hardware limit), and label-stack
// compression for long paths.

#include "bench_common.hpp"
#include "dataplane/sublabel.hpp"
#include "te/dijkstra.hpp"

using namespace dsdn;

int main() {
  bench::banner("Appendix A: sublabel encoding across topologies");

  struct Entry {
    std::string name;
    topo::Topology topo;
  };
  std::vector<Entry> entries;
  for (const auto& z : topo::zoo_catalog())
    entries.push_back({z.name, z.factory()});
  entries.push_back({"B4 (synthetic)", topo::make_b4_like()});
  entries.push_back({"B2 (synthetic)", topo::make_b2_like()});

  std::printf("%-16s %6s %7s %8s %10s %11s %10s %9s\n", "topology", "nodes",
              "fibers", "max-deg", "sublabels", "2*(2k-1)", "max-table",
              "avg-table");
  for (const auto& e : entries) {
    const auto a = dataplane::assign_sublabels(e.topo);
    const std::size_t k = e.topo.max_degree();
    std::size_t max_table = 0, total_table = 0;
    for (topo::NodeId n = 0; n < e.topo.num_nodes(); ++n) {
      const auto fib = dataplane::SublabelFib::build(e.topo, n, a);
      max_table = std::max(max_table, fib.size());
      total_table += fib.size();
    }
    std::printf("%-16s %6zu %7zu %8zu %10zu %11zu %10zu %9zu\n",
                e.name.c_str(), e.topo.num_nodes(), e.topo.num_links() / 2, k,
                a.num_sublabels_used(), 2 * (2 * k - 1), max_table,
                total_table / e.topo.num_nodes());
  }

  // Compression: stack depth for the diameter path of each topology.
  std::printf("\n%-16s %10s %14s %16s\n", "topology", "diameter",
              "plain labels", "sublabel labels");
  for (const auto& e : entries) {
    // Longest shortest path from node 0 as a representative long route.
    const auto tree = te::shortest_path_tree(e.topo, 0);
    const te::Path* longest = nullptr;
    for (const auto& p : tree) {
      if (!p.empty() && (!longest || p.hops() > longest->hops())) longest = &p;
    }
    if (!longest) continue;
    const auto a = dataplane::assign_sublabels(e.topo);
    const auto stack = dataplane::encode_sublabel_route(*longest, a);
    std::printf("%-16s %10zu %14zu %16zu%s\n", e.name.c_str(),
                longest->hops(), longest->hops(), stack.depth(),
                longest->hops() > dataplane::kMaxLabelDepth
                    ? "  (plain exceeds the 12-label limit!)"
                    : "");
  }
  std::printf("\nshape check: sublabel counts stay O(max degree) -- "
              "independent of network size -- and table sizes sit far "
              "below the tens-of-thousands hardware limit.\n");
  return 0;
}
