// Figure 8 (a,b,c) + §5.1.1 headline: the three components of
// convergence time -- Tprop, Tcomp, Tprog -- for cSDN vs dSDN on the
// B4-scale network, plus the overall per-event network convergence time.
//
// Expected shape (paper): dSDN Tprop ~20x lower; dSDN Tcomp ~35% higher
// (router CPU); dSDN Tprog ~1000x lower; overall convergence 120-150x
// faster for dSDN.
//
// dSDN Tcomp here is *measured*: the real TE solver runs on this host and
// is scaled by the 1.9GHz/2.8GHz router-vs-server core-speed ratio.

#include <chrono>

#include "bench_common.hpp"
#include "sim/convergence.hpp"
#include "te/solver.hpp"

using namespace dsdn;

namespace {

metrics::EmpiricalDistribution measure_solver_times(
    const bench::Workload& w, std::size_t runs, double scale) {
  metrics::EmpiricalDistribution d;
  te::Solver solver;
  for (std::size_t i = 0; i < runs; ++i) {
    te::SolveStats stats;
    solver.solve(w.topo, w.tm, &stats);
    d.add(stats.wall_time_s * scale);
  }
  return d;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 8: convergence components on B4 -- cSDN vs dSDN\n"
      "(dSDN Tcomp measured from real solver runs, router-CPU scaled)");

  bench::BenchRun run("fig08_convergence_components");
  const auto w = bench::b4_workload();
  bench::print_workload(w);
  run.workload(w);

  const std::size_t n_events = bench::full_scale() ? 400 : 150;
  run.out().param("n_events", n_events);

  // Tcomp is the same algorithm on the same inputs for both schemes;
  // measure it once on this host, then scale: x1 for the datacenter
  // server, x(2.8/1.9) for the router's slower control cores.
  const auto server_tcomp =
      measure_solver_times(w, bench::full_scale() ? 40 : 15, 1.0);
  const auto router_tcomp =
      server_tcomp.scaled(1.0 / metrics::kRouterCpuSpeedRatio);

  sim::DsdnConvergenceConfig dcfg;
  dcfg.n_events = n_events;
  dcfg.measured_tcomp = router_tcomp;
  const auto dsdn = sim::measure_dsdn_convergence(w.topo, dcfg);

  sim::CsdnConvergenceConfig ccfg;
  ccfg.n_events = n_events;
  ccfg.measured_tcomp = server_tcomp;
  const auto csdn = sim::measure_csdn_convergence(w.topo, w.tm, ccfg);

  std::printf("--- (a) Propagation time Tprop ---\n");
  std::printf("cSDN  %s\n", bench::dist_row(csdn.tprop).c_str());
  std::printf("dSDN  %s\n", bench::dist_row(dsdn.tprop).c_str());
  std::printf("  => cSDN/dSDN mean ratio: %.1fx (paper: ~20x)\n\n",
              csdn.tprop.mean() / dsdn.tprop.mean());

  std::printf("--- (b) Computation time Tcomp ---\n");
  std::printf("cSDN  %s\n", bench::dist_row(csdn.tcomp).c_str());
  std::printf("dSDN  %s\n", bench::dist_row(dsdn.tcomp).c_str());
  std::printf("  => dSDN/cSDN mean ratio: %.2fx (paper: ~1.35x)\n\n",
              dsdn.tcomp.mean() / csdn.tcomp.mean());

  std::printf("--- (c) Programming time Tprog ---\n");
  std::printf("cSDN  %s\n", bench::dist_row(csdn.tprog).c_str());
  std::printf("dSDN  %s\n", bench::dist_row(dsdn.tprog).c_str());
  std::printf("  => cSDN/dSDN mean ratio: %.0fx (paper: ~1000x)\n\n",
              csdn.tprog.mean() / dsdn.tprog.mean());

  std::printf("--- Overall per-event network convergence time ---\n");
  std::printf("cSDN  %s\n", bench::dist_row(csdn.total).c_str());
  std::printf("dSDN  %s\n", bench::dist_row(dsdn.total).c_str());
  std::printf("  => cSDN/dSDN mean ratio: %.0fx (paper: 120-150x)\n",
              csdn.total.mean() / dsdn.total.mean());

  // ---- Warm-start Tcomp: incremental recompute vs from-scratch ----
  // Single-link failures invalidate only the paths crossing the fiber;
  // the incremental solver re-waterfills just those demands. Both times
  // are wall-clock on this host for the identical post-failure view.
  sim::IncrementalTcompConfig icfg;
  icfg.n_events = bench::full_scale() ? 40 : 15;
  const auto inc = sim::measure_incremental_tcomp(w.topo, w.tm, icfg);
  std::printf("\n--- Tcomp per single-fiber failure: full vs warm-start ---\n");
  std::printf("full  %s\n", bench::dist_row(inc.full_s).c_str());
  std::printf("warm  %s\n", bench::dist_row(inc.incremental_s).c_str());
  std::printf(
      "  => warm-start speedup: %.1fx median, %.1fx mean; reuse %.0f%% of "
      "allocations (%zu fallbacks)\n",
      inc.full_s.median() / inc.incremental_s.median(),
      inc.full_s.mean() / inc.incremental_s.mean(),
      inc.reuse_fraction.mean() * 100.0, inc.fallbacks);

  run.out().series("csdn.tprop_s", csdn.tprop);
  run.out().series("dsdn.tprop_s", dsdn.tprop);
  run.out().series("csdn.tcomp_s", csdn.tcomp);
  run.out().series("dsdn.tcomp_s", dsdn.tcomp);
  run.out().series("csdn.tprog_s", csdn.tprog);
  run.out().series("dsdn.tprog_s", dsdn.tprog);
  run.out().series("csdn.total_s", csdn.total);
  run.out().series("dsdn.total_s", dsdn.total);
  run.out().metric("tprop_ratio", csdn.tprop.mean() / dsdn.tprop.mean());
  run.out().metric("tcomp_ratio", dsdn.tcomp.mean() / csdn.tcomp.mean());
  run.out().metric("tprog_ratio", csdn.tprog.mean() / dsdn.tprog.mean());
  run.out().metric("total_ratio", csdn.total.mean() / dsdn.total.mean());
  run.out().series("te.full_solve_s", inc.full_s);
  run.out().series("te.incremental_s", inc.incremental_s);
  run.out().metric("incremental_speedup_median",
                   inc.full_s.median() / inc.incremental_s.median());
  run.out().metric("reuse_fraction_mean", inc.reuse_fraction.mean());
  run.out().metric("fallbacks", static_cast<double>(inc.fallbacks));
  run.out().metric("checker_violations",
                   static_cast<double>(inc.checker_violations));
  return 0;
}
