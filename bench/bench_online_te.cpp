// Online TE under demand drift (ROADMAP item 5): the closed loop where
// controllers only see EWMA-estimated demand while the oracle matrix
// moves underneath (diurnal cycles + flash crowds + link churn), and a
// te::RecomputePolicy decides when the fleet re-solves.
//
// For each topology {Abilene, B4-like} the same seeded demand process is
// replayed under four policies:
//   every        -- re-solve on any material advert change (reference)
//   periodic-8   -- re-solve every 8th measurement epoch
//   threshold    -- re-solve when estimated drift >= 10% of solved total
//   hybrid       -- threshold, with a staleness cap of 16 epochs
//
// Scoring is throughput regret vs an omniscient same-tick cold solve of
// the ground-truth matrix, plus bad seconds (epochs whose regret exceeds
// 1%). GATES, on both topologies: zero invariant violations anywhere,
// hybrid regret <= 10%, and hybrid recomputes <= 25% of the every-epoch
// reference. Exit status is the gate, so the CI leg doubles as a
// regression tripwire.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/online.hpp"
#include "te/parallel_solver.hpp"

using namespace dsdn;

namespace {

struct PolicyRow {
  const char* name;
  te::RecomputePolicyOptions policy;
};

sim::OnlineTeOptions base_options(std::uint64_t epochs) {
  sim::OnlineTeOptions opt;
  opt.epochs = epochs;
  opt.epoch_s = 1.0;
  // Demand process: +/-25% diurnal swing over a 96-epoch day, a flash
  // crowd roughly every 50 epochs, slow regional drift. Slow enough per
  // epoch that a drift threshold has something to defer, fast enough
  // that never re-solving loses real throughput.
  opt.dynamics.diurnal_amplitude = 0.25;
  opt.dynamics.diurnal_period_epochs = 96.0;
  opt.dynamics.regional_max_shift = 0.15;
  opt.dynamics.regional_horizon_epochs = static_cast<std::uint32_t>(epochs);
  opt.dynamics.flash_prob_per_epoch = 0.02;
  opt.estimator.alpha = 0.4;
  // Floors are workload-relative: the Abilene gravity matrix has ~10%
  // of its rate in rows under 0.05 Gbps, and a floor that truncates
  // them turns the regret gate into a measurement of the floor rather
  // than of recompute-policy lag.
  opt.estimator.floor_gbps = 0.005;
  opt.churn_events = 4;
  opt.bad_loss_fraction = 0.01;
  opt.check_every = 25;
  return opt;
}

}  // namespace

int main() {
  bench::banner(
      "Online TE: closed-loop regret / recompute tradeoff by policy");
  bench::BenchRun run("online_te");

  const bool full = bench::full_scale();
  const std::uint64_t epochs = full ? 400 : 200;
  const std::uint64_t seed = 0x0E;

  std::vector<PolicyRow> policies = {
      {"every", {.kind = te::RecomputeTrigger::kEvery}},
      {"periodic-8",
       {.kind = te::RecomputeTrigger::kPeriodic, .period_epochs = 8}},
      {"threshold-10",
       {.kind = te::RecomputeTrigger::kThreshold, .drift_threshold = 0.10}},
      {"hybrid",
       {.kind = te::RecomputeTrigger::kHybrid,
        .period_epochs = 16,
        .drift_threshold = 0.10}},
  };

  struct TopoCase {
    const char* name;
    bench::Workload w;
  };
  std::vector<TopoCase> cases;
  {
    TopoCase abilene;
    abilene.name = "abilene";
    abilene.w.topo = topo::make_abilene();
    traffic::GravityParams gp;
    gp.target_max_utilization = 0.6;
    gp.seed = 0xABE;
    abilene.w.tm = traffic::generate_gravity(abilene.w.topo, gp).aggregated();
    cases.push_back(std::move(abilene));

    // B4-like at a demand count that keeps 4 x 200 closed-loop epochs
    // (each scored by an omniscient cold solve) inside a CI budget;
    // full scale restores the standard workload size.
    TopoCase b4;
    b4.name = "b4";
    b4.w.topo = topo::make_b4_like();
    traffic::GravityParams b4_gp;
    b4_gp.pair_fraction = full ? 0.15 : 0.05;
    b4_gp.target_max_utilization = 0.6;
    b4_gp.seed = 0xB4;
    b4.w.tm = traffic::generate_gravity(b4.w.topo, b4_gp).aggregated();
    cases.push_back(std::move(b4));
  }

  std::size_t threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 4;
  te::ThreadPool pool(threads);

  run.out().param("epochs", static_cast<std::uint64_t>(epochs));
  run.out().param("policies", static_cast<std::uint64_t>(policies.size()));

  bool pass = true;
  for (const auto& tc : cases) {
    std::printf("\n[%s] %zu nodes, %zu links, %zu demands; %llu epochs, "
                "diurnal + flash crowds + %zu churn events\n\n",
                tc.name, tc.w.topo.num_nodes(), tc.w.topo.num_links(),
                tc.w.tm.size(), static_cast<unsigned long long>(epochs),
                static_cast<std::size_t>(4));
    std::printf("%14s %10s %9s %9s %11s %8s %10s\n", "policy", "recomputes",
                "vs every", "regret", "max epoch", "bad s", "violations");

    std::size_t every_recomputes = 0;
    double hybrid_regret = 0.0, hybrid_fraction = 0.0, hybrid_bad_s = 0.0;
    for (const auto& p : policies) {
      sim::OnlineTeOptions opt = base_options(epochs);
      opt.policy = p.policy;
      opt.solver.pool = &pool;
      const sim::OnlineTeResult r =
          sim::run_online_te(tc.w.topo, tc.w.tm, opt, seed);

      if (p.policy.kind == te::RecomputeTrigger::kEvery)
        every_recomputes = r.recomputes;
      const double fraction =
          every_recomputes > 0 ? static_cast<double>(r.recomputes) /
                                     static_cast<double>(every_recomputes)
                               : 1.0;
      std::printf("%14s %10zu %8.0f%% %8.2f%% %10.2f%% %8.0f %10zu\n",
                  p.name, r.recomputes, 100.0 * fraction,
                  100.0 * r.regret_fraction, 100.0 * r.max_epoch_regret,
                  r.bad_seconds, r.violations.size());
      for (const auto& v : r.violations)
        std::printf("    violation: %s\n", v.c_str());
      std::fflush(stdout);

      if (!r.ok()) {
        std::printf("  [FAIL] %s/%s: invariant violations in closed loop\n",
                    tc.name, p.name);
        pass = false;
      }
      if (r.epochs != epochs) {
        std::printf("  [FAIL] %s/%s: stopped at epoch %llu of %llu\n",
                    tc.name, p.name,
                    static_cast<unsigned long long>(r.epochs),
                    static_cast<unsigned long long>(epochs));
        pass = false;
      }

      const std::string prefix = std::string(tc.name) + "_" + p.name + "_";
      run.out().metric(prefix + "recomputes",
                       static_cast<double>(r.recomputes));
      run.out().metric(prefix + "regret_fraction", r.regret_fraction);
      run.out().metric(prefix + "bad_seconds", r.bad_seconds);

      if (p.policy.kind == te::RecomputeTrigger::kHybrid) {
        hybrid_regret = r.regret_fraction;
        hybrid_fraction = fraction;
        hybrid_bad_s = r.bad_seconds;
      }
    }

    std::printf("\ngate @ %s: hybrid regret %.2f%% (need <= 10%%), "
                "recomputes %.0f%% of every (need <= 25%%)\n",
                tc.name, 100.0 * hybrid_regret, 100.0 * hybrid_fraction);
    if (hybrid_regret > 0.10) {
      std::printf("  [FAIL] hybrid regret %.2f%% > 10%%\n",
                  100.0 * hybrid_regret);
      pass = false;
    }
    if (hybrid_fraction > 0.25) {
      std::printf("  [FAIL] hybrid recompute fraction %.0f%% > 25%%\n",
                  100.0 * hybrid_fraction);
      pass = false;
    }

    const std::string prefix = std::string(tc.name) + "_";
    run.out().metric(prefix + "hybrid_recompute_fraction", hybrid_fraction);
    run.out().metric(prefix + "hybrid_bad_seconds", hybrid_bad_s);
  }

  std::printf("\n%s: hybrid policy %s the <= 10%% regret / <= 25%% "
              "recompute gate on every topology.\n",
              pass ? "PASS" : "FAIL", pass ? "clears" : "misses");
  run.out().metric("gates_passed", pass ? 1.0 : 0.0);
  return pass ? 0 : 1;
}
