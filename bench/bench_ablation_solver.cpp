// Ablation: the TE solver's progressive-filling quantum (DESIGN.md design
// choice). Smaller per-round grants approximate exact max-min fairness
// more closely but cost more waterfill rounds (and Dijkstra calls);
// larger grants are fast but can starve late demands. We sweep the
// quantum divisor and report Jain's fairness index over same-class
// bottleneck shares, admitted traffic, and runtime.

#include <cmath>

#include "bench_common.hpp"
#include "te/solver.hpp"

using namespace dsdn;

namespace {

// Jain's index over per-demand satisfaction ratios of the lowest class
// (the class that actually experiences scarcity).
double jain_index(const te::Solution& solution) {
  double sum = 0, sum_sq = 0;
  std::size_t n = 0;
  for (const auto& a : solution.allocations) {
    if (a.demand.priority != metrics::PriorityClass::kLow) continue;
    if (a.demand.rate_gbps <= 0) continue;
    const double x = a.allocated_gbps / a.demand.rate_gbps;
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n == 0 || sum_sq == 0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

}  // namespace

int main() {
  bench::banner("Ablation: waterfill quantum -- fairness vs runtime");

  // Scarce network: heavily oversubscribed so fairness is actually contested.
  auto w = bench::b4_workload(/*target_util=*/6.0);
  std::printf("workload: %zu nodes, %zu links, %zu demands, "
              "6x oversubscribed\n\n",
              w.topo.num_nodes(), w.topo.num_links(), w.tm.size());

  std::printf("%10s %10s %12s %12s %10s %10s\n", "divisor", "rounds",
              "admitted%", "jain(low)", "searches", "time");
  for (const double divisor : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    te::SolverOptions opt;
    opt.quantum_divisor = divisor;
    te::SolveStats stats;
    const auto sol = te::Solver(opt).solve(w.topo, w.tm, &stats);
    std::printf("%10.0f %10zu %11.1f%% %12.4f %10zu %10s\n", divisor,
                stats.rounds,
                100.0 * sol.total_allocated_gbps() / w.tm.total_rate_gbps(),
                jain_index(sol), stats.path_searches,
                util::format_duration(stats.wall_time_s).c_str());
  }

  std::printf("\nshape check: fairness (Jain index toward 1.0) and cost "
              "(rounds/searches) both rise with the divisor; the default "
              "of 8 buys most of the fairness at a fraction of the "
              "fine-grained cost.\n");
  return 0;
}
