// Figure 11: bad seconds for the intermediate priority class under 10x
// and 20x churn (failure-rate multipliers). Events start overlapping;
// impact per event grows, but dSDN keeps a large margin over cSDN
// (paper: cSDN median ~22x / ~17x dSDN's at 10x / 20x churn).

#include "bench_common.hpp"
#include "sim/transient.hpp"

using namespace dsdn;

int main() {
  bench::banner("Figure 11: bad seconds under 10x / 20x churn "
                "(P-intermediate)");

  const auto w = bench::b4_workload(/*target_util=*/1.1);
  bench::print_workload(w);

  sim::SolutionProvider provider(&w.tm, {});

  for (const double churn : {1.0, 10.0, 20.0}) {
    std::printf("--- churn %.0fx ---\n", churn);
    double medians[2] = {0, 0};
    int i = 0;
    for (const sim::Scheme scheme :
         {sim::Scheme::kCsdn, sim::Scheme::kDsdn}) {
      sim::TransientConfig cfg;
      cfg.scheme = scheme;
      cfg.failures.days = (bench::full_scale() ? 400.0 : 60.0) / churn;
      cfg.failures.mttf_days = 120;
      cfg.failures.churn_multiplier = churn;
      cfg.failures.seed = 0xF11;
      cfg.seed = 0x511;
      sim::TransientSimulator simulator(w.topo, w.tm, cfg, &provider);
      const auto d = simulator.run().bad_seconds_distribution(
          metrics::PriorityClass::kIntermediate);
      std::printf("  %-11s %s\n", sim::scheme_name(scheme),
                  bench::dist_row_plain(d).c_str());
      medians[i++] = d.median();
    }
    if (medians[1] > 0) {
      std::printf("  => cSDN/dSDN median ratio: %.1fx\n\n",
                  medians[0] / medians[1]);
    } else {
      std::printf("  => dSDN median ~0 (cSDN median %.2f)\n\n", medians[0]);
    }
  }
  return 0;
}
