// Figure 15: dSDN Tcomp across external (TopologyZoo) and internal
// topologies, with and without the shortest-path pre-computation cache.
// Gravity-model demands as in the paper [52].
//
// Expected shape: Tcomp grows with topology size; the cache speeds up
// computation, most strongly on the largest topologies (paper: up to
// ~2.5x).

#include "bench_common.hpp"
#include "te/path_cache.hpp"
#include "te/solver.hpp"

using namespace dsdn;

namespace {

struct Row {
  std::string name;
  std::size_t nodes;
  topo::Topology topo;
  traffic::TrafficMatrix tm;
};

double best_of(const te::Solver& solver, const Row& row, std::size_t runs) {
  double best = 1e18;
  for (std::size_t r = 0; r < runs; ++r) {
    te::SolveStats stats;
    solver.solve(row.topo, row.tm, &stats);
    best = std::min(best, stats.wall_time_s);
  }
  return best;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 15: Tcomp per topology, with and without path caching");

  std::vector<Row> rows;
  for (const auto& entry : topo::zoo_catalog()) {
    Row row;
    row.name = entry.name;
    row.topo = entry.factory();
    row.nodes = row.topo.num_nodes();
    traffic::GravityParams gp;
    gp.seed = 0xF15;
    // Capacity-tight workload: saturated shortest paths are what force
    // the solver back to constrained Dijkstra (cache misses).
    gp.target_max_utilization = 1.2;
    row.tm = traffic::generate_gravity(row.topo, gp).aggregated();
    rows.push_back(std::move(row));
  }
  {
    auto w = bench::b4_workload();
    rows.push_back(
        {"B4 (synthetic)", w.topo.num_nodes(), std::move(w.topo),
         std::move(w.tm)});
  }
  {
    auto w = bench::b2_workload();
    rows.push_back(
        {"B2 (synthetic)", w.topo.num_nodes(), std::move(w.topo),
         std::move(w.tm)});
  }

  bench::BenchRun run("fig15_topologies");
  const std::size_t runs = bench::full_scale() ? 5 : 2;
  run.out().param("runs", runs);
  run.out().param("topologies", rows.size());
  std::printf("%-16s %7s  %14s  %14s  %8s  %10s  %8s\n", "topology",
              "nodes", "no cache", "with cache", "speedup", "cache hit%",
              "repair%");
  double largest_speedup = 0;
  for (const Row& row : rows) {
    const double plain = best_of(te::Solver(), row, runs);
    te::PathCache cache(row.topo);
    te::SolverOptions opt;
    opt.cache = &cache;
    const double cached = best_of(te::Solver(opt), row, runs);
    // hit% counts primary hits; repair% is misses answered from the
    // memoized fallback instead of a fresh Dijkstra.
    const std::size_t lookups = std::max<std::size_t>(
        1, cache.hits() + cache.repair_hits() + cache.misses());
    const double hit_rate =
        100.0 * static_cast<double>(cache.hits()) /
        static_cast<double>(lookups);
    const double repair_rate =
        100.0 * static_cast<double>(cache.repair_hits()) /
        static_cast<double>(lookups);
    const double speedup = plain / cached;
    largest_speedup = std::max(largest_speedup, speedup);
    std::printf("%-16s %7zu  %14s  %14s  %7.2fx  %9.1f%%  %7.1f%%\n",
                row.name.c_str(), row.nodes,
                util::format_duration(plain).c_str(),
                util::format_duration(cached).c_str(), speedup, hit_rate,
                repair_rate);
    run.out().metric("cache_speedup." + row.name, speedup);
  }
  run.out().metric("largest_cache_speedup", largest_speedup);
  std::printf(
      "\nshape check: caching speeds up TE, growing with topology size, "
      "best %.2fx.\n(paper: up to 2.5x on the largest topology -- our "
      "waterfill solver is more path-search-dominated than B4's "
      "production solver, so cache gains overshoot the paper's while "
      "preserving the trend)\n",
      largest_speedup);
  return 0;
}
