// Segment routing vs strict source routing: the measured trade (§3.2
// coexistence, Fig 8/10/15 workloads).
//
// For Abilene, GEANT (the Fig 15 zoo points) and the B4 stand-in
// (Fig 8's workload), boot two full emulations on the same view -- one
// all-strict fleet, one all-SR fleet -- and measure what each side pays:
//
//   what SR buys (GATED):
//     - stack depth: node-segment stacks are <= 3 labels vs up to 12
//       strict per-link labels;
//     - route-programming bytes: the headend label stacks a controller
//       installs per recompute (4 bytes/label entry), measurably below
//       strict MPLS;
//     - FIB label state: headend stack entries + transit table + (SR
//       only) per-target segment next hops, measurably below strict;
//     - throughput: SrSolver within 10% of the strict TE placement.
//   what SR costs (reported, the honest side of the trade):
//     - blast radius: flows whose installed ECMP expansion crossed a cut
//       fiber -- SR reroutes every flow whose DAG used it, strict only
//       the routes pinned through it (Fig 10's regime);
//     - transient loss in the stale-FIB window after a cut, before any
//       reconvergence: strict stacks pinned through the fiber blackhole
//       (no FRR splice modeled here; Table 2's bench covers FRR), while
//       SR transits locally re-pick among surviving ECMP members.
//
// Exit status is the gate (bench_hier_scale precedent): non-zero when
// any bound is missed, so the tier-1 artifact leg doubles as a tripwire.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/upgrade.hpp"
#include "sim/emulation.hpp"
#include "sim/flow_eval.hpp"
#include "te/segment_routing.hpp"
#include "te/solver.hpp"
#include "topo/zoo.hpp"

using namespace dsdn;

namespace {

struct FibCount {
  std::size_t routes = 0;        // installed headend (egress, class) routes
  std::size_t stack_labels = 0;  // label entries across those stacks
  std::size_t max_depth = 0;
  std::size_t transit = 0;
  std::size_t sr_next_hops = 0;

  // Per-route programming payload: the label stacks a controller writes
  // on recompute (4 bytes per MPLS label entry). Transit and segment
  // tables are excluded on both sides: transit is static per link, and
  // the SR table derives from the IGP underlay, not per-route programming.
  std::size_t route_bytes() const { return 4 * stack_labels; }
  // Total dynamic FIB label state, segment tables included.
  std::size_t fib_entries() const {
    return stack_labels + transit + sr_next_hops;
  }
};

FibCount count_fib(const sim::DsdnEmulation& emu, std::size_t num_nodes) {
  FibCount c;
  for (topo::NodeId n = 0; n < num_nodes; ++n) {
    const auto& dp = emu.at(n);
    for (const auto& [key, entry] : dp.ingress.encap_table()) {
      for (const auto& route : entry.routes) {
        ++c.routes;
        c.stack_labels += route.stack.depth();
        c.max_depth = std::max(c.max_depth, route.stack.depth());
      }
    }
    c.transit += dp.transit.size();
    c.sr_next_hops += dp.sr.num_next_hops();
  }
  return c;
}

// Duplex representatives: the fiber ids cuts are expressed against.
std::vector<topo::LinkId> fibers_of(const topo::Topology& topo) {
  std::vector<topo::LinkId> fibers;
  for (topo::LinkId l = 0; l < topo.num_links(); ++l) {
    const auto& link = topo.link(l);
    if (link.src < link.dst) fibers.push_back(l);
  }
  return fibers;
}

// Rate-weighted mean loss fraction.
double weighted_loss(const traffic::TrafficMatrix& tm,
                     const sim::LossReport& report) {
  double lost = 0.0, total = 0.0;
  for (std::size_t i = 0; i < tm.size(); ++i) {
    lost += report.loss[i] * tm.demands()[i].rate_gbps;
    total += tm.demands()[i].rate_gbps;
  }
  return total > 0 ? lost / total : 0.0;
}

// Fraction of flows whose installed expansion crosses the fiber (either
// direction of the duplex pair).
double affected_fraction(const topo::Topology& topo,
                         const sim::InstalledRouting& routing,
                         topo::LinkId fiber) {
  const auto& link = topo.link(fiber);
  const topo::LinkId reverse = topo.find_link(link.dst, link.src);
  std::size_t affected = 0;
  for (const auto& row : routing.rows) {
    bool hit = false;
    for (const auto& wp : row) {
      for (const auto l : wp.path.links) {
        if (l == fiber || l == reverse) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) ++affected;
  }
  return routing.rows.empty()
             ? 0.0
             : static_cast<double>(affected) /
                   static_cast<double>(routing.rows.size());
}

struct RowResult {
  std::string key;
  double strict_gbps = 0, sr_gbps = 0, gap = 0;
  std::size_t sr_max_stack = 0, strict_max_stack = 0;
  double sr_mean_stack = 0, strict_mean_stack = 0;
  FibCount strict_fib, sr_fib;
  double strict_blast = 0, sr_blast = 0;
  double strict_loss = 0, sr_loss = 0;
  std::size_t cuts = 0;
};

RowResult measure(const std::string& key, const topo::Topology& topo,
                  const traffic::TrafficMatrix& tm, std::size_t max_cuts) {
  RowResult r;
  r.key = key;

  // Placement gap: both solvers on the identical view, identical options
  // (the consensus-free contract -- any router would compute the same).
  const te::Solution strict_sol =
      te::Solver(te::SolverOptions{}).solve(topo, tm);
  const te::Solution sr_sol =
      te::SrSolver(te::SolverOptions{}, te::SrOptions{}).solve(topo, tm);
  r.strict_gbps = strict_sol.total_allocated_gbps();
  r.sr_gbps = sr_sol.total_allocated_gbps();
  r.gap = r.strict_gbps > 0 ? 1.0 - r.sr_gbps / r.strict_gbps : 0.0;

  // Two converged fleets on the same ground truth. The strict fleet is
  // the stock config; the SR fleet assigns kSegmentRouting to every
  // router (bypasses off: SR's repair is the ECMP re-pick, not FRR).
  sim::EmulationConfig strict_cfg;
  sim::DsdnEmulation strict_emu(topo, tm, strict_cfg);
  strict_emu.bootstrap();

  sim::EmulationConfig sr_cfg;
  sr_cfg.use_bypasses = false;
  sr_cfg.algorithms.assign(topo.num_nodes(),
                           core::PathingAlgorithm::kSegmentRouting);
  sim::DsdnEmulation sr_emu(topo, tm, sr_cfg);
  sr_emu.bootstrap();

  r.strict_fib = count_fib(strict_emu, topo.num_nodes());
  r.sr_fib = count_fib(sr_emu, topo.num_nodes());
  r.strict_max_stack = r.strict_fib.max_depth;
  r.sr_max_stack = r.sr_fib.max_depth;
  r.strict_mean_stack =
      r.strict_fib.routes
          ? static_cast<double>(r.strict_fib.stack_labels) /
                static_cast<double>(r.strict_fib.routes)
          : 0.0;
  r.sr_mean_stack = r.sr_fib.routes
                        ? static_cast<double>(r.sr_fib.stack_labels) /
                              static_cast<double>(r.sr_fib.routes)
                        : 0.0;

  // Installed expansions over the healthy topology (SR stacks expand
  // through the routers' SrFibs into concrete underlay paths).
  const auto strict_installed =
      sim::InstalledRouting::from_dataplane(tm, strict_emu, &topo);
  const auto sr_installed =
      sim::InstalledRouting::from_dataplane(tm, sr_emu, &topo);

  // Cut sweep: blast radius on the healthy expansion, transient loss on
  // the stale-FIB expansion against the degraded topology. Structural
  // loss only (congestion off): the question is who blackholes, not who
  // queues.
  const auto fibers = fibers_of(topo);
  const std::size_t stride = std::max<std::size_t>(1, fibers.size() / max_cuts);
  sim::LossOptions loss_options;
  loss_options.congestion = false;
  for (std::size_t i = 0; i < fibers.size(); i += stride) {
    const topo::LinkId fiber = fibers[i];
    ++r.cuts;
    r.strict_blast += affected_fraction(topo, strict_installed, fiber);
    r.sr_blast += affected_fraction(topo, sr_installed, fiber);

    topo::Topology down = topo;
    down.set_duplex_up(fiber, false);
    const auto strict_stale =
        sim::InstalledRouting::from_dataplane(tm, strict_emu, &down);
    const auto sr_stale =
        sim::InstalledRouting::from_dataplane(tm, sr_emu, &down);
    r.strict_loss += weighted_loss(
        tm, sim::evaluate_loss(down, tm, strict_stale, nullptr, loss_options));
    r.sr_loss += weighted_loss(
        tm, sim::evaluate_loss(down, tm, sr_stale, nullptr, loss_options));
  }
  if (r.cuts > 0) {
    r.strict_blast /= static_cast<double>(r.cuts);
    r.sr_blast /= static_cast<double>(r.cuts);
    r.strict_loss /= static_cast<double>(r.cuts);
    r.sr_loss /= static_cast<double>(r.cuts);
  }
  return r;
}

}  // namespace

int main() {
  bench::banner(
      "SR vs strict source routing: stack depth, state, throughput, blast "
      "radius");
  bench::BenchRun run("sr_trade");
  const std::size_t max_cuts = bench::full_scale() ? 1000000 : 16;

  struct RowInput {
    std::string key;
    bench::Workload w;
  };
  std::vector<RowInput> inputs;
  {
    traffic::GravityParams gp;
    gp.seed = 0xF8;
    gp.target_max_utilization = 0.6;
    auto topo = topo::make_abilene();
    auto tm = traffic::generate_gravity(topo, gp).aggregated();
    inputs.push_back({"abilene", {std::move(topo), std::move(tm)}});
  }
  {
    traffic::GravityParams gp;
    gp.seed = 0xF15;
    gp.target_max_utilization = 0.6;
    auto topo = topo::make_geant();
    auto tm = traffic::generate_gravity(topo, gp).aggregated();
    inputs.push_back({"geant", {std::move(topo), std::move(tm)}});
  }
  inputs.push_back({"b4", bench::b4_workload()});

  bool pass = true;
  std::vector<RowResult> rows;
  for (const auto& in : inputs) {
    std::printf("[%s] %zu nodes, %zu links, %zu demands\n", in.key.c_str(),
                in.w.topo.num_nodes(), in.w.topo.num_links(), in.w.tm.size());
    rows.push_back(measure(in.key, in.w.topo, in.w.tm, max_cuts));
    const RowResult& r = rows.back();

    std::printf(
        "  stacks: SR mean %.2f / max %zu labels, strict mean %.2f / max "
        "%zu\n",
        r.sr_mean_stack, r.sr_max_stack, r.strict_mean_stack,
        r.strict_max_stack);
    std::printf(
        "  state:  SR %zu route bytes, %zu FIB label entries (%zu segment "
        "next hops); strict %zu route bytes, %zu FIB label entries\n",
        r.sr_fib.route_bytes(), r.sr_fib.fib_entries(), r.sr_fib.sr_next_hops,
        r.strict_fib.route_bytes(), r.strict_fib.fib_entries());
    std::printf(
        "  place:  SR %.1f / strict %.1f gbps allocated (gap %.2f%%)\n",
        r.sr_gbps, r.strict_gbps, 100.0 * r.gap);
    std::printf(
        "  cuts:   %zu fibers -- blast radius SR %.1f%% vs strict %.1f%% of "
        "flows; stale-window loss SR %.2f%% vs strict %.2f%%\n\n",
        r.cuts, 100.0 * r.sr_blast, 100.0 * r.strict_blast, 100.0 * r.sr_loss,
        100.0 * r.strict_loss);

    if (r.sr_max_stack > 3) {
      std::printf("  [FAIL] %s: SR stack depth %zu > 3\n", r.key.c_str(),
                  r.sr_max_stack);
      pass = false;
    }
    if (r.sr_fib.route_bytes() >= r.strict_fib.route_bytes()) {
      std::printf("  [FAIL] %s: SR route bytes %zu not below strict %zu\n",
                  r.key.c_str(), r.sr_fib.route_bytes(),
                  r.strict_fib.route_bytes());
      pass = false;
    }
    if (r.sr_fib.fib_entries() >= r.strict_fib.fib_entries()) {
      std::printf("  [FAIL] %s: SR FIB entries %zu not below strict %zu\n",
                  r.key.c_str(), r.sr_fib.fib_entries(),
                  r.strict_fib.fib_entries());
      pass = false;
    }
    if (r.gap > 0.10) {
      std::printf("  [FAIL] %s: throughput gap %.1f%% > 10%%\n", r.key.c_str(),
                  100.0 * r.gap);
      pass = false;
    }

    run.out().metric(r.key + "_strict_gbps", r.strict_gbps);
    run.out().metric(r.key + "_sr_gbps", r.sr_gbps);
    run.out().metric(r.key + "_gap_fraction", r.gap);
    run.out().metric(r.key + "_sr_max_stack",
                     static_cast<double>(r.sr_max_stack));
    run.out().metric(r.key + "_sr_mean_stack", r.sr_mean_stack);
    run.out().metric(r.key + "_strict_mean_stack", r.strict_mean_stack);
    run.out().metric(r.key + "_sr_route_bytes",
                     static_cast<double>(r.sr_fib.route_bytes()));
    run.out().metric(r.key + "_strict_route_bytes",
                     static_cast<double>(r.strict_fib.route_bytes()));
    run.out().metric(r.key + "_sr_fib_entries",
                     static_cast<double>(r.sr_fib.fib_entries()));
    run.out().metric(r.key + "_strict_fib_entries",
                     static_cast<double>(r.strict_fib.fib_entries()));
    run.out().metric(r.key + "_sr_blast_fraction", r.sr_blast);
    run.out().metric(r.key + "_strict_blast_fraction", r.strict_blast);
    run.out().metric(r.key + "_sr_transient_loss", r.sr_loss);
    run.out().metric(r.key + "_strict_transient_loss", r.strict_loss);
  }

  double worst_gap = 0, worst_bytes_ratio = 0, worst_fib_ratio = 0;
  double sr_max_stack = 0;
  for (const RowResult& r : rows) {
    worst_gap = std::max(worst_gap, r.gap);
    sr_max_stack = std::max(sr_max_stack, static_cast<double>(r.sr_max_stack));
    if (r.strict_fib.route_bytes() > 0)
      worst_bytes_ratio = std::max(
          worst_bytes_ratio, static_cast<double>(r.sr_fib.route_bytes()) /
                                 static_cast<double>(r.strict_fib.route_bytes()));
    if (r.strict_fib.fib_entries() > 0)
      worst_fib_ratio = std::max(
          worst_fib_ratio, static_cast<double>(r.sr_fib.fib_entries()) /
                               static_cast<double>(r.strict_fib.fib_entries()));
  }
  run.out().param("topologies", static_cast<std::uint64_t>(rows.size()));
  run.out().param("max_cuts", static_cast<std::uint64_t>(max_cuts));
  run.out().param("full_scale", bench::full_scale());
  run.out().metric("worst_gap_fraction", worst_gap);
  run.out().metric("sr_max_stack_depth", sr_max_stack);
  run.out().metric("worst_route_bytes_ratio", worst_bytes_ratio);
  run.out().metric("worst_fib_entries_ratio", worst_fib_ratio);
  run.out().metric("gates_passed", pass ? 1.0 : 0.0);

  std::printf("%s: SR %s the <= 3-label / below-strict-state / <= 10%% gap "
              "gates (worst gap %.1f%%, route-bytes ratio %.2f, FIB ratio "
              "%.2f)\n",
              pass ? "PASS" : "FAIL", pass ? "clears" : "misses",
              100.0 * worst_gap, worst_bytes_ratio, worst_fib_ratio);
  return pass ? 0 : 1;
}
