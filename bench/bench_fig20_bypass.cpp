// Figure 20 (Appendix D): bad-seconds distribution (2nd/25th/50th/75th/
// 98th percentiles) for cSDN and dSDN with and without bypass paths in
// effect, per priority class, with the omniscient baseline.
//
// Expected shape: dSDN stays well below cSDN either way; bypasses reduce
// impact for both schemes but do not eliminate it for lower classes.

#include "bench_common.hpp"
#include "sim/transient.hpp"

using namespace dsdn;

int main() {
  bench::banner("Figure 20: bad seconds with and without bypasses");

  const auto w = bench::b4_workload(/*target_util=*/1.1);
  bench::print_workload(w);

  sim::TransientConfig base;
  base.failures.days = bench::full_scale() ? 365 : 100;
  base.failures.mttf_days = 120;
  base.failures.seed = 0xF20;
  base.seed = 0x520;
  base.bypass_strategy = dataplane::BypassStrategy::kKCapacityAware;

  sim::SolutionProvider provider(&w.tm, base.solver_options);

  struct Config {
    const char* label;
    sim::Scheme scheme;
    bool bypasses;
  };
  const Config configs[] = {
      {"Omniscient", sim::Scheme::kOmniscient, false},
      {"cSDN", sim::Scheme::kCsdn, false},
      {"cSDN+bypass", sim::Scheme::kCsdn, true},
      {"dSDN", sim::Scheme::kDsdn, false},
      {"dSDN+bypass", sim::Scheme::kDsdn, true},
  };

  // One simulator run per config; report every class from it.
  std::vector<sim::TransientResult> results;
  for (const Config& cfg : configs) {
    sim::TransientConfig tc = base;
    tc.scheme = cfg.scheme;
    tc.use_bypasses = cfg.bypasses;
    sim::TransientSimulator simulator(w.topo, w.tm, tc, &provider);
    results.push_back(simulator.run());
  }

  for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
    const auto cls = static_cast<metrics::PriorityClass>(c);
    std::printf("--- %s ---\n", metrics::priority_name(cls));
    for (std::size_t i = 0; i < std::size(configs); ++i) {
      const auto d = results[i].bad_seconds_distribution(cls);
      std::printf("  %-12s %s\n", configs[i].label,
                  bench::dist_row_plain(d).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
