#pragma once

// Shared workload construction and reporting helpers for the per-figure
// benchmark harnesses. Each bench binary regenerates one table/figure of
// the paper (see DESIGN.md's per-experiment index) and prints the rows /
// series the paper reports.
//
// Scale: workloads default to sizes that keep a full `for b in bench/*`
// sweep to a few minutes on a laptop while preserving every trend the
// paper reports. Set DSDN_BENCH_SCALE=full for paper-scale runs.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "metrics/distribution.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"
#include "util/format.hpp"

namespace dsdn::bench {

inline bool full_scale() {
  const char* env = std::getenv("DSDN_BENCH_SCALE");
  return env && std::string(env) == "full";
}

struct Workload {
  topo::Topology topo;
  traffic::TrafficMatrix tm;
};

// B4 stand-in: O(100) routers, O(10k) aggregated demands (§5.1.1).
inline Workload b4_workload(double target_util = 0.6) {
  Workload w;
  w.topo = topo::make_b4_like();
  traffic::GravityParams gp;
  gp.pair_fraction = full_scale() ? 0.4 : 0.15;
  gp.target_max_utilization = target_util;
  gp.seed = 0xB4;
  w.tm = traffic::generate_gravity(w.topo, gp).aggregated();
  return w;
}

// B2 stand-in: ~6x nodes, ~10x links, ~30x flows vs B4 (§5.3).
inline Workload b2_workload(double target_util = 0.6) {
  Workload w;
  w.topo = topo::make_b2_like();
  traffic::GravityParams gp;
  gp.pair_fraction = full_scale() ? 0.03 : 0.01;
  gp.target_max_utilization = target_util;
  gp.seed = 0xB2;
  w.tm = traffic::generate_gravity(w.topo, gp).aggregated();
  return w;
}

inline std::string dist_row(const metrics::EmpiricalDistribution& d) {
  if (d.empty()) return "(no samples)";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "p2=%-10s p25=%-10s p50=%-10s p75=%-10s p98=%-10s mean=%-10s",
                util::format_duration(d.percentile(2)).c_str(),
                util::format_duration(d.percentile(25)).c_str(),
                util::format_duration(d.percentile(50)).c_str(),
                util::format_duration(d.percentile(75)).c_str(),
                util::format_duration(d.percentile(98)).c_str(),
                util::format_duration(d.mean()).c_str());
  return buf;
}

// Same percentiles but unit-free (e.g. bad seconds).
inline std::string dist_row_plain(const metrics::EmpiricalDistribution& d,
                                  int decimals = 2) {
  if (d.empty()) return "(no samples)";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "p2=%-9s p25=%-9s p50=%-9s p75=%-9s p98=%-9s mean=%-9s",
                util::format_double(d.percentile(2), decimals).c_str(),
                util::format_double(d.percentile(25), decimals).c_str(),
                util::format_double(d.percentile(50), decimals).c_str(),
                util::format_double(d.percentile(75), decimals).c_str(),
                util::format_double(d.percentile(98), decimals).c_str(),
                util::format_double(d.mean(), decimals).c_str());
  return buf;
}

inline void banner(const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

}  // namespace dsdn::bench
