#pragma once

// Shared workload construction and reporting helpers for the per-figure
// benchmark harnesses. Each bench binary regenerates one table/figure of
// the paper (see DESIGN.md's per-experiment index) and prints the rows /
// series the paper reports.
//
// Scale: workloads default to sizes that keep a full `for b in bench/*`
// sweep to a few minutes on a laptop while preserving every trend the
// paper reports. Set DSDN_BENCH_SCALE=full for paper-scale runs.
//
// Machine-readable artifacts: construct a bench::BenchRun at the top of
// main() and feed it params/series/metrics as the run prints its tables.
// With DSDN_BENCH_JSON=<dir> set, its destructor writes
// <dir>/BENCH_<name>.json (workload params, headline metrics, percentile
// series, and the delta of the process metrics registry over the run).
// With DSDN_TRACE=<dir> set, the span tracer records the whole run and
// a chrome://tracing file lands at <dir>/TRACE_<name>.json.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "metrics/distribution.hpp"
#include "obs/artifact.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"
#include "util/format.hpp"

namespace dsdn::bench {

inline bool full_scale() {
  // Computed once: benches consult this inside measured loops.
  static const bool v = [] {
    const char* env = std::getenv("DSDN_BENCH_SCALE");
    return env && std::string(env) == "full";
  }();
  return v;
}

// Directory from DSDN_BENCH_JSON, or nullptr when artifacts are off.
inline const char* bench_json_dir() {
  static const std::string dir = [] {
    const char* env = std::getenv("DSDN_BENCH_JSON");
    return env ? std::string(env) : std::string();
  }();
  return dir.empty() ? nullptr : dir.c_str();
}

// Directory from DSDN_TRACE, or nullptr when span tracing is off.
inline const char* bench_trace_dir() {
  static const std::string dir = [] {
    const char* env = std::getenv("DSDN_TRACE");
    return env ? std::string(env) : std::string();
  }();
  return dir.empty() ? nullptr : dir.c_str();
}

struct Workload {
  topo::Topology topo;
  traffic::TrafficMatrix tm;
};

// B4 stand-in: O(100) routers, O(10k) aggregated demands (§5.1.1).
inline Workload b4_workload(double target_util = 0.6) {
  Workload w;
  w.topo = topo::make_b4_like();
  traffic::GravityParams gp;
  gp.pair_fraction = full_scale() ? 0.4 : 0.15;
  gp.target_max_utilization = target_util;
  gp.seed = 0xB4;
  w.tm = traffic::generate_gravity(w.topo, gp).aggregated();
  return w;
}

// B2 stand-in: ~6x nodes, ~10x links, ~30x flows vs B4 (§5.3).
inline Workload b2_workload(double target_util = 0.6) {
  Workload w;
  w.topo = topo::make_b2_like();
  traffic::GravityParams gp;
  gp.pair_fraction = full_scale() ? 0.03 : 0.01;
  gp.target_max_utilization = target_util;
  gp.seed = 0xB2;
  w.tm = traffic::generate_gravity(w.topo, gp).aggregated();
  return w;
}

inline std::string dist_row(const metrics::EmpiricalDistribution& d) {
  if (d.empty()) return "(no samples)";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "p2=%-10s p25=%-10s p50=%-10s p75=%-10s p98=%-10s mean=%-10s",
                util::format_duration(d.percentile(2)).c_str(),
                util::format_duration(d.percentile(25)).c_str(),
                util::format_duration(d.percentile(50)).c_str(),
                util::format_duration(d.percentile(75)).c_str(),
                util::format_duration(d.percentile(98)).c_str(),
                util::format_duration(d.mean()).c_str());
  return buf;
}

// Same percentiles but unit-free (e.g. bad seconds).
inline std::string dist_row_plain(const metrics::EmpiricalDistribution& d,
                                  int decimals = 2) {
  if (d.empty()) return "(no samples)";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "p2=%-9s p25=%-9s p50=%-9s p75=%-9s p98=%-9s mean=%-9s",
                util::format_double(d.percentile(2), decimals).c_str(),
                util::format_double(d.percentile(25), decimals).c_str(),
                util::format_double(d.percentile(50), decimals).c_str(),
                util::format_double(d.percentile(75), decimals).c_str(),
                util::format_double(d.percentile(98), decimals).c_str(),
                util::format_double(d.mean(), decimals).c_str());
  return buf;
}

inline void banner(const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

// The standard workload banner every per-figure bench prints.
inline void print_workload(const Workload& w, const char* note = nullptr) {
  std::printf("workload: %zu nodes, %zu links, %zu demands%s%s\n\n",
              w.topo.num_nodes(), w.topo.num_links(), w.tm.size(),
              note ? " " : "", note ? note : "");
}

// RAII run artifact: collects params/metrics/series during the bench and,
// on destruction, attaches the metrics-registry delta for the run and
// writes BENCH_<name>.json / TRACE_<name>.json per the env switches.
class BenchRun {
 public:
  explicit BenchRun(const char* name) : artifact_(name) {
    baseline_ = obs::Registry::global().snapshot();
    artifact_.param("scale", std::string(full_scale() ? "full" : "quick"));
    if (bench_trace_dir()) obs::Tracer::global().enable();
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  void workload(const Workload& w) {
    artifact_.param("nodes", w.topo.num_nodes());
    artifact_.param("links", w.topo.num_links());
    artifact_.param("demands", w.tm.size());
  }

  obs::RunArtifact& out() { return artifact_; }

  ~BenchRun() {
    artifact_.attach_registry(
        obs::Registry::global().snapshot().diff(baseline_));
    if (const char* dir = bench_json_dir()) {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (artifact_.write(dir)) {
        std::printf("\n[bench] wrote %s/%s\n", dir,
                    artifact_.file_name().c_str());
      } else {
        std::fprintf(stderr, "[bench] FAILED to write %s/%s\n", dir,
                     artifact_.file_name().c_str());
      }
    }
    if (const char* dir = bench_trace_dir()) {
      auto& tracer = obs::Tracer::global();
      tracer.disable();
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      const std::string path =
          std::string(dir) + "/TRACE_" + artifact_.name() + ".json";
      if (tracer.write_chrome_trace(path)) {
        std::printf("[bench] wrote %s (%zu spans, %zu dropped)\n",
                    path.c_str(), tracer.events().size(), tracer.dropped());
      } else {
        std::fprintf(stderr, "[bench] FAILED to write %s\n", path.c_str());
      }
    }
  }

 private:
  obs::RunArtifact artifact_;
  obs::Snapshot baseline_;
};

}  // namespace dsdn::bench
