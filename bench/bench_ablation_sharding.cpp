// Ablation: sharded dSDN (§6 future work, EBB-style horizontal planes).
// The paper argues sharding is orthogonal to dSDN and would contain data
// plane failures to one shard. We quantify: the same base network and
// demand set run (a) as one dSDN plane and (b) as K independent planes
// with striped capacity; for each fiber cut we measure the *blast
// fraction* -- what share of all flows could even be affected -- and the
// control-plane work (NSU deliveries) triggered by the event.

#include "bench_common.hpp"
#include "shard/sharded_wan.hpp"
#include "sim/convergence.hpp"

using namespace dsdn;

int main() {
  bench::banner("Ablation: sharded dSDN -- failure containment");
  bench::BenchRun run("ablation_sharding");

  const auto base = topo::make_geant();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.5;
  const auto tm = traffic::generate_gravity(base, gp).aggregated();
  std::printf("base network: %zu nodes, %zu links, %zu flows\n\n",
              base.num_nodes(), base.num_links(), tm.size());
  run.out().param("nodes", base.num_nodes());
  run.out().param("links", base.num_links());
  run.out().param("demands", tm.size());

  const auto fibers = sim::pick_failure_fibers(base, 4, 0x5A4D);
  run.out().param("failure_events", fibers.size());
  metrics::EmpiricalDistribution exposed_by_k;

  std::printf("%8s %16s %18s %20s\n", "planes", "flows exposed",
              "NSU msgs/event", "planes disturbed");
  for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    shard::ShardedWan wan(base, tm, k);
    wan.bootstrap();

    double exposed_total = 0;
    std::size_t msgs_total = 0;
    std::size_t disturbed_total = 0;
    for (const topo::LinkId fiber : fibers) {
      // Fail the fiber in one plane (round-robin over events).
      const std::size_t victim = fiber % k;
      std::vector<std::size_t> before(k);
      for (std::size_t p = 0; p < k; ++p)
        before[p] = wan.plane(p).messages_delivered();

      wan.fail_fiber_in_plane(victim, fiber);

      std::size_t disturbed = 0, msgs = 0;
      for (std::size_t p = 0; p < k; ++p) {
        const std::size_t delta =
            wan.plane(p).messages_delivered() - before[p];
        msgs += delta;
        if (delta > 0) ++disturbed;
      }
      exposed_total += static_cast<double>(
                           wan.plane_demands(victim).size()) /
                       static_cast<double>(tm.size());
      msgs_total += msgs;
      disturbed_total += disturbed;
      wan.repair_fiber_in_plane(victim, fiber);
    }
    const double exposed_frac =
        exposed_total / static_cast<double>(fibers.size());
    std::printf("%8zu %15.1f%% %18zu %17.1f/%zu\n", k, 100.0 * exposed_frac,
                msgs_total / fibers.size(),
                static_cast<double>(disturbed_total) /
                    static_cast<double>(fibers.size()),
                k);
    exposed_by_k.add(exposed_frac);
    const std::string prefix = "k" + std::to_string(k) + "_";
    run.out().metric(prefix + "flows_exposed_fraction", exposed_frac);
    run.out().metric(prefix + "nsu_msgs_per_event",
                     static_cast<double>(msgs_total) /
                         static_cast<double>(fibers.size()));
    run.out().metric(prefix + "planes_disturbed",
                     static_cast<double>(disturbed_total) /
                         static_cast<double>(fibers.size()));
  }
  run.out().series("flows_exposed_fraction_by_k", exposed_by_k);

  std::printf("\nshape check: with K planes only ~1/K of flows are even "
              "exposed to a fiber cut, and exactly one plane's control "
              "plane does any reconvergence work -- the EBB-style "
              "containment the paper projects for sharded dSDN.\n");
  return 0;
}
