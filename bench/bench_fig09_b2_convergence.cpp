// Figure 9: total convergence time on the B2-scale network -- RSVP-TE vs
// dSDN. Expected shape: RSVP-TE has a higher median (paper: 45.5 s vs
// 29.8 s) and a much heavier tail (the signaling stampede can run 10+
// minutes); dSDN's time is dominated by Tcomp on the big topology.

#include "bench_common.hpp"
#include "rsvp/rsvp_te.hpp"
#include "topo/builder.hpp"
#include "sim/convergence.hpp"
#include "te/solver.hpp"

using namespace dsdn;

int main() {
  bench::banner("Figure 9: total convergence in B2 -- RSVP-TE vs dSDN");

  bench::BenchRun run("fig09_b2_convergence");
  auto w = bench::b2_workload(/*target_util=*/1.25);
  bench::print_workload(w);
  run.workload(w);

  const std::size_t n_events = bench::full_scale() ? 40 : 12;
  run.out().param("n_events", n_events);

  // ---- RSVP-TE: real signaling simulation ----
  rsvp::RsvpParams rp;
  rp.seed = 0x95;
  rsvp::RsvpTeNetwork rsvp_net(&w.topo, w.tm, rp);
  const std::size_t established = rsvp_net.establish_all();
  std::printf("RSVP-TE: established %zu/%zu LSPs\n", established, w.tm.size());

  // Failure events: the most heavily reserved fibers (a cut of a loaded
  // trunk is what triggers mass restoration), connectivity-preserving.
  std::vector<topo::LinkId> fibers;
  {
    std::vector<std::pair<double, topo::LinkId>> ranked;
    for (const topo::Link& l : w.topo.links()) {
      if (l.reverse == topo::kInvalidLink || l.id > l.reverse) continue;
      ranked.emplace_back(
          rsvp_net.reserved()[l.id] + rsvp_net.reserved()[l.reverse], l.id);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    topo::Topology probe = w.topo;
    for (const auto& [load, fiber] : ranked) {
      if (fibers.size() >= n_events) break;
      probe.set_duplex_up(fiber, false);
      if (topo::is_strongly_connected(probe)) fibers.push_back(fiber);
      probe.set_duplex_up(fiber, true);
    }
  }

  metrics::EmpiricalDistribution rsvp_conv;
  std::size_t total_crankbacks = 0;
  for (topo::LinkId fiber : fibers) {
    const auto result = rsvp_net.fail_fiber(fiber);
    if (result.affected_lsps > 0) rsvp_conv.add(result.convergence_time_s);
    total_crankbacks += result.crankbacks;
    rsvp_net.repair_fiber(fiber);
  }
  std::printf("RSVP-TE: %zu crankbacks across %zu failure events\n\n",
              total_crankbacks, fibers.size());

  // ---- dSDN: flood + measured router Tcomp + local Tprog ----
  metrics::EmpiricalDistribution router_tcomp;
  {
    te::Solver solver;
    const std::size_t runs = bench::full_scale() ? 10 : 4;
    for (std::size_t i = 0; i < runs; ++i) {
      te::SolveStats stats;
      solver.solve(w.topo, w.tm, &stats);
      router_tcomp.add(stats.wall_time_s / metrics::kRouterCpuSpeedRatio);
    }
  }
  sim::DsdnConvergenceConfig dcfg;
  dcfg.n_events = n_events;
  dcfg.measured_tcomp = router_tcomp;
  const auto dsdn = sim::measure_dsdn_convergence(w.topo, dcfg);

  // ---- Warm-start Tcomp on B2 single-link failures ----
  // The acceptance scenario for the incremental solver: on B2 scale a
  // single fiber cut touches a small fraction of the demand set, so the
  // warm recompute should be several times faster than from scratch.
  sim::IncrementalTcompConfig icfg;
  icfg.n_events = bench::full_scale() ? 12 : 6;
  const auto inc = sim::measure_incremental_tcomp(w.topo, w.tm, icfg);
  std::printf("--- Router Tcomp per single-fiber failure ---\n");
  std::printf("full  %s\n", bench::dist_row(inc.full_s).c_str());
  std::printf("warm  %s\n", bench::dist_row(inc.incremental_s).c_str());
  std::printf(
      "  => warm-start speedup: %.1fx median; reuse %.0f%% of allocations"
      " (%zu fallbacks, %zu checker violations)\n\n",
      inc.full_s.median() / inc.incremental_s.median(),
      inc.reuse_fraction.mean() * 100.0, inc.fallbacks,
      inc.checker_violations);

  // dSDN convergence when routers keep warm TE state: Tcomp sampled from
  // the measured incremental distribution, router-CPU scaled.
  auto wcfg = dcfg;
  wcfg.measured_tcomp =
      inc.incremental_s.scaled(1.0 / metrics::kRouterCpuSpeedRatio);
  const auto dsdn_warm = sim::measure_dsdn_convergence(w.topo, wcfg);

  std::printf("--- Total convergence time ---\n");
  std::printf("RSVP-TE    %s\n", bench::dist_row(rsvp_conv).c_str());
  std::printf("dSDN       %s\n", bench::dist_row(dsdn.total).c_str());
  std::printf("dSDN warm  %s\n", bench::dist_row(dsdn_warm.total).c_str());
  std::printf(
      "\nshape checks: RSVP median > dSDN median: %s;"
      " RSVP p98/p50 tail stretch %.1fx vs dSDN %.1fx\n",
      rsvp_conv.median() > dsdn.total.median() ? "yes" : "NO",
      rsvp_conv.percentile(98) / rsvp_conv.median(),
      dsdn.total.percentile(98) / dsdn.total.median());
  std::printf(
      "dSDN on B2 is dominated by Tcomp (paper: Tprop/Tprog are O(100ms)):"
      " measured router Tcomp mean = %s\n",
      util::format_duration(router_tcomp.mean()).c_str());

  // ---- Lossy-flood mode: Fig 9 under injected NSU loss ----
  // Every flooding hop loses the transfer with probability p and pays
  // bounded exponential-backoff retransmits; local programming also
  // transiently fails at p per attempt. The claim under test: dSDN's
  // convergence degrades gracefully (bounded by the retransmit budget),
  // not catastrophically.
  std::printf("\n--- dSDN under injected flood loss (bounded retransmits) ---\n");
  for (const double loss : {0.0, 0.01, 0.05, 0.10}) {
    auto lcfg = dcfg;
    lcfg.flood.loss_prob = loss;
    lcfg.prog_fail_prob = loss;
    const auto lossy = sim::measure_dsdn_convergence(w.topo, lcfg);
    std::printf("%4.0f%%     %s\n", loss * 100,
                bench::dist_row(lossy.total).c_str());
  }

  run.out().param("established_lsps", established);
  run.out().metric("rsvp.crankbacks", static_cast<double>(total_crankbacks));
  run.out().series("rsvp.total_s", rsvp_conv);
  run.out().series("dsdn.total_s", dsdn.total);
  run.out().series("dsdn.router_tcomp_s", router_tcomp);
  run.out().metric("median_ratio",
                   rsvp_conv.median() / dsdn.total.median());
  run.out().series("te.full_solve_s", inc.full_s);
  run.out().series("te.incremental_s", inc.incremental_s);
  run.out().series("dsdn.warm_total_s", dsdn_warm.total);
  run.out().metric("incremental_speedup_median",
                   inc.full_s.median() / inc.incremental_s.median());
  run.out().metric("reuse_fraction_mean", inc.reuse_fraction.mean());
  run.out().metric("fallbacks", static_cast<double>(inc.fallbacks));
  run.out().metric("checker_violations",
                   static_cast<double>(inc.checker_violations));
  return 0;
}
