// Ablation: dSDN as an underlay vs an IS-IS-like underlay (§3.2,
// incremental deployment). The first deployment step replaces IS-IS with
// dSDN while cSDN stays primary; the claimed benefit is "a
// better-performing underlay, since TE implements capacity-aware path
// selection while IS-IS does not."
//
// We quantify exactly that: place the same demands with (a)
// capacity-oblivious IGP shortest paths (IS-IS) and (b) the TE solver
// (dSDN underlay), on the healthy network and across failure scenarios,
// and compare congestion and SLO damage.

#include "bench_common.hpp"
#include "sim/convergence.hpp"
#include "sim/flow_eval.hpp"
#include "te/dijkstra.hpp"
#include "te/solver.hpp"

using namespace dsdn;

namespace {

// All demands on IGP shortest paths, oblivious to capacity.
sim::InstalledRouting shortest_path_routing(const topo::Topology& topo,
                                            const traffic::TrafficMatrix& tm) {
  sim::InstalledRouting routing;
  routing.rows.resize(tm.size());
  std::vector<std::vector<te::Path>> tree(topo.num_nodes());
  std::vector<char> have(topo.num_nodes(), 0);
  for (std::size_t i = 0; i < tm.size(); ++i) {
    const auto& d = tm.demands()[i];
    if (!have[d.src]) {
      tree[d.src] = te::shortest_path_tree(topo, d.src);
      have[d.src] = 1;
    }
    const te::Path& p = tree[d.src][d.dst];
    if (!p.empty()) routing.rows[i].push_back(te::WeightedPath{p, 1.0});
  }
  return routing;
}

struct Outcome {
  double max_util = 0.0;
  double lost_gbps = 0.0;
  double violating_groups = 0.0;  // over all classes
};

Outcome measure(const topo::Topology& topo, const traffic::TrafficMatrix& tm,
                const sim::InstalledRouting& routing,
                const std::vector<std::vector<traffic::FlowGroup>>& groups) {
  const auto report = sim::evaluate_loss(topo, tm, routing);
  Outcome out;
  for (double u : report.utilization) out.max_util = std::max(out.max_util, u);
  for (std::size_t i = 0; i < tm.size(); ++i) {
    out.lost_gbps += report.loss[i] * tm.demands()[i].rate_gbps;
  }
  double blast = 0.0;
  for (const auto& class_groups : groups) {
    blast += sim::blast_radius(tm, class_groups, report) *
             static_cast<double>(class_groups.size());
  }
  out.violating_groups = blast;
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: dSDN TE underlay vs IS-IS shortest-path underlay");

  auto w = bench::b4_workload(/*target_util=*/1.05);
  std::printf("workload: %zu nodes, %zu links, %zu demands, %.0f Gbps "
              "offered\n\n",
              w.topo.num_nodes(), w.topo.num_links(), w.tm.size(),
              w.tm.total_rate_gbps());

  std::vector<std::vector<traffic::FlowGroup>> groups;
  for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
    groups.push_back(traffic::group_flows_of_class(
        w.topo, w.tm, static_cast<metrics::PriorityClass>(c)));
  }

  te::Solver solver;
  const auto scenarios = sim::pick_failure_fibers(w.topo, 8, 0xAB1A);

  std::printf("%-18s | %18s | %18s\n", "", "IS-IS underlay", "dSDN underlay");
  std::printf("%-18s | %8s %9s | %8s %9s\n", "scenario", "max-util",
              "lost-Gbps", "max-util", "lost-Gbps");

  double isis_lost_total = 0, dsdn_lost_total = 0;
  auto report_row = [&](const char* label) {
    const auto isis = measure(w.topo, w.tm,
                              shortest_path_routing(w.topo, w.tm), groups);
    const auto dsdn = measure(
        w.topo, w.tm,
        sim::InstalledRouting::from_solution(solver.solve(w.topo, w.tm)),
        groups);
    std::printf("%-18s | %7.0f%% %9.1f | %7.0f%% %9.1f\n", label,
                100.0 * isis.max_util, isis.lost_gbps,
                100.0 * dsdn.max_util, dsdn.lost_gbps);
    isis_lost_total += isis.lost_gbps;
    dsdn_lost_total += dsdn.lost_gbps;
  };

  report_row("healthy");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    w.topo.set_duplex_up(scenarios[i], false);
    char label[32];
    std::snprintf(label, sizeof(label), "fiber cut %zu", i + 1);
    report_row(label);
    w.topo.set_duplex_up(scenarios[i], true);
  }

  std::printf("\ntotal traffic lost across scenarios: IS-IS %.1f Gbps vs "
              "dSDN %.1f Gbps (%.1fx reduction)\n",
              isis_lost_total, dsdn_lost_total,
              dsdn_lost_total > 0 ? isis_lost_total / dsdn_lost_total
                                  : isis_lost_total);
  std::printf("(§2.1/§3.2: capacity-aware placement is why TE underlays "
              "beat IGP underlays; prior work reports up to 60%% higher "
              "achievable utilization)\n");
  return 0;
}
