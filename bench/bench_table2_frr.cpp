// Table 2 (Appendix C): blast radius and median end-to-end latency
// inflation for affected high-priority traffic, across 6 FRR-congestion
// incidents, for each of the 4 bypass strategies.
//
// Methodology notes:
//  - Incidents are the 6 fiber cuts whose plain-FRR bypass congestion
//    impacts high-priority traffic the most -- mirroring the paper, which
//    replayed the 6 worst performance alerts *attributed to FRR
//    congestion* over a 14-day window.
//  - Loss during the FRR window is evaluated QoS-obliviously
//    (LossOptions.strict_priority = false): transient bypass congestion
//    overflows shallow hardware queues before scheduler protection
//    engages, which is how such incidents hurt high-priority traffic in
//    production despite strict-priority configuration.
//
// Expected shape: plain shortest-path FRR leaves a few percent blast
// radius; capacity-aware and multi-path strategies shrink it; k
// capacity-aware bypasses eliminate the drops entirely at modest (but
// sometimes >20%) median latency inflation.

#include <algorithm>

#include "bench_common.hpp"
#include "sim/flow_eval.hpp"
#include "te/solver.hpp"

using namespace dsdn;

namespace {

struct IncidentOutcome {
  double blast = 0.0;
  double latency_inflation = 1.0;
};

struct Evaluator {
  topo::Topology& topo;
  const traffic::TrafficMatrix& tm;
  const sim::InstalledRouting& routing;
  const std::vector<double>& residual;
  const std::vector<traffic::FlowGroup>& groups;

  IncidentOutcome run(topo::LinkId fiber,
                      dataplane::BypassStrategy strategy) const {
    const topo::LinkId rev = topo.link(fiber).reverse;
    const auto plan = dataplane::BypassPlan::compute_for_links(
        topo, strategy, {fiber, rev}, residual, 16);

    topo.set_duplex_up(fiber, false);
    sim::LossOptions frr_window;
    frr_window.strict_priority = false;
    frr_window.bypass_residual = &residual;
    const auto report =
        sim::evaluate_loss(topo, tm, routing, &plan, frr_window);

    IncidentOutcome out;
    out.blast = sim::blast_radius(tm, groups, report);

    // Median latency inflation over affected high-priority demands.
    traffic::TrafficMatrix affected_tm;
    sim::InstalledRouting affected_routing;
    for (std::size_t i = 0; i < tm.size(); ++i) {
      const auto& d = tm.demands()[i];
      if (d.priority != metrics::PriorityClass::kHigh) continue;
      bool crosses = false;
      for (const auto& wp : routing.rows[i]) {
        for (topo::LinkId l : wp.path.links) {
          if (l == fiber || l == rev) crosses = true;
        }
      }
      if (!crosses) continue;
      affected_tm.add(d);
      affected_routing.rows.push_back(routing.rows[i]);
    }
    out.latency_inflation =
        affected_tm.empty()
            ? 1.0
            : sim::median_latency_inflation(topo, affected_tm,
                                            affected_routing,
                                            affected_routing, &plan,
                                            &residual);
    topo.set_duplex_up(fiber, true);
    return out;
  }
};

}  // namespace

int main() {
  bench::banner("Table 2: FRR bypass strategies across 6 incidents");

  // A hot network makes FRR congestion visible (these are the paper's
  // "performance alert" scenarios).
  auto w = bench::b4_workload(/*target_util=*/0.95);
  bench::print_workload(w);

  const auto solution = te::Solver().solve(w.topo, w.tm);
  const auto routing = sim::InstalledRouting::from_solution(solution);
  const auto residual = solution.residual_capacity(w.topo);
  const auto groups = traffic::group_flows_of_class(
      w.topo, w.tm, metrics::PriorityClass::kHigh);

  Evaluator eval{w.topo, w.tm, routing, residual, groups};

  // Incident search: among the most loaded fibers, the 6 whose plain-FRR
  // congestion blast radius is worst.
  std::vector<std::pair<double, topo::LinkId>> load_ranked;
  for (const topo::Link& l : w.topo.links()) {
    if (l.reverse == topo::kInvalidLink || l.id > l.reverse) continue;
    const double load = (l.capacity_gbps - residual[l.id]) +
                        (l.capacity_gbps - residual[l.reverse]);
    load_ranked.emplace_back(load, l.id);
  }
  std::sort(load_ranked.rbegin(), load_ranked.rend());
  std::vector<std::pair<double, topo::LinkId>> incident_ranked;
  const std::size_t candidates =
      std::min<std::size_t>(load_ranked.size(), 40);
  for (std::size_t i = 0; i < candidates; ++i) {
    const auto blast =
        eval.run(load_ranked[i].second, dataplane::BypassStrategy::kShortestPath)
            .blast;
    incident_ranked.emplace_back(blast, load_ranked[i].second);
  }
  std::sort(incident_ranked.rbegin(), incident_ranked.rend());
  incident_ranked.resize(std::min<std::size_t>(incident_ranked.size(), 6));

  const dataplane::BypassStrategy strategies[] = {
      dataplane::BypassStrategy::kShortestPath,
      dataplane::BypassStrategy::kCapacityAware,
      dataplane::BypassStrategy::kKShortestPaths,
      dataplane::BypassStrategy::kKCapacityAware,
  };

  std::printf("%-4s", "#");
  for (const auto s : strategies)
    std::printf("  %-22s", dataplane::bypass_strategy_name(s));
  std::printf("\n%-4s", "");
  for (std::size_t i = 0; i < 4; ++i) std::printf("  %-22s", "blast% (lat-x)");
  std::printf("\n");

  double blast_sums[4] = {};
  for (std::size_t inc = 0; inc < incident_ranked.size(); ++inc) {
    std::printf("%-4zu", inc + 1);
    for (std::size_t s = 0; s < 4; ++s) {
      const auto out = eval.run(incident_ranked[inc].second, strategies[s]);
      blast_sums[s] += out.blast;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.2f%% (%.2f)", out.blast * 100.0,
                    out.latency_inflation);
      std::printf("  %-22s", cell);
    }
    std::printf("\n");
  }
  std::printf("\nshape check: mean blast radius by strategy: ");
  for (std::size_t s = 0; s < 4; ++s) {
    std::printf("%s%.2f%%", s ? " -> " : "",
                100.0 * blast_sums[s] /
                    static_cast<double>(incident_ranked.size()));
  }
  std::printf("\n(paper: FRR leaves 1-6%% blast; k-capacity-aware reaches "
              "0.0%% on all six incidents at <=1.24x median inflation)\n");
  return 0;
}
